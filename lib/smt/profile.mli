(** Structured solver observability: per-quantifier instantiation
    accounting and per-phase time/conflict accounting, reported on every
    {!Solver.result}.

    Every performance claim of the paper's §3.1 is an observability claim —
    query bytes, instantiation counts, theory-time mixing — and the coarse
    per-solve totals in {!Solver.stats} cannot answer "which axiom is
    hot?".  This record can: it is the OCaml counterpart of Verus's
    [--profile] flag (an Axiom-Profiler-style instantiation attributor),
    and the driver aggregates it across verification conditions into the
    per-function / per-program hot-spot tables behind
    [verus_cli profile].

    Collection is always on inside {!Ematch} (the counters ride fields the
    matcher already maintains), so requesting a profile costs nothing
    beyond the final record construction; callers that ignore the field
    pay only that. *)

(** Instantiation accounting for one quantifier (identified by its stable
    label). *)
type quant_profile = {
  q_label : string;
      (** stable human-readable identity: bound-variable count plus the
          trigger patterns, with fresh-symbol counters masked so the label
          survives parallel runs (see {!val:label_of}) *)
  q_heads : string list;
      (** sorted, deduplicated head-symbol names of the trigger patterns;
          [[]] for quantifiers with no selectable trigger (those fall back
          to bounded sort enumeration) *)
  q_nvars : int;  (** number of bound variables *)
  q_instances : int;  (** instantiations emitted to the SAT core *)
  q_matched : int;
      (** candidate substitutions produced by trigger matching, including
          ones later discarded as duplicates *)
  q_duplicates : int;
      (** candidates discarded because the instance was generated before
          (the dedup table hit) — high values mean the trigger keeps
          re-finding old work *)
  q_first_round : int;
      (** 1-based instantiation round of the first emitted instance;
          0 when the quantifier never fired *)
  q_last_round : int;  (** round of the most recent emitted instance *)
}

(** Wall-clock seconds per solver phase, one solve (or an aggregate). *)
type phase = {
  ph_sat : float;  (** CDCL search *)
  ph_euf : float;  (** congruence-closure construction and checks *)
  ph_lia : float;  (** simplex build + check (branch-and-bound included) *)
  ph_comb : float;  (** model-based theory-combination lemma search *)
  ph_ematch : float;  (** trigger matching and instance emission *)
}

(** A full profile: one solve's, or (after {!merge}) an aggregate over
    many solves. *)
type t = {
  quants : quant_profile list;
      (** sorted hottest-first: instances desc, then matched desc, then
          label asc — a deterministic order *)
  phase : phase;
  inst_rounds : int;  (** instantiation rounds executed *)
  euf_conflicts : int;  (** blocking clauses contributed by congruence *)
  lia_conflicts : int;  (** blocking clauses contributed by arithmetic *)
  theory_lemmas : int;
      (** non-conflict lemmas: equality splits, EUF→LIA propagations and
          combination guesses *)
}

val empty : t
(** All-zero profile (quantifier-free solves, EPR fragment failures). *)

val empty_phase : phase
(** All-zero phase times. *)

val label_of : nvars:int -> patterns:Term.t list -> string
(** The canonical label for a quantifier with the given trigger patterns:
    ["forall/2 {pat, pat}"].  Fresh-symbol counters ([name!17]) are masked
    to [name!*] so labels — and therefore aggregation keys — are identical
    across runs and across worker interleavings under [jobs > 1]. *)

val sort_quants : quant_profile list -> quant_profile list
(** The deterministic hottest-first order documented on {!t}. *)

val merge : t -> t -> t
(** Pointwise sum: phases and counters add; quantifier rows with the same
    [q_label] combine (instances/matched/duplicates add, rounds take
    min-first/max-last).  Used by the driver to fold per-VC profiles into
    per-function and per-program tables; commutative and associative up to
    the deterministic re-sort, so parallel verification aggregates to the
    same table regardless of completion order. *)

val top : int -> t -> quant_profile list
(** First [k] rows of [t.quants]. *)

val total_instances : t -> int
(** Sum of [q_instances] over every quantifier — the single "how much
    E-matching work" number the bench tables report. *)

val to_json : t -> Vbase.Json.t
(** Lossless JSON rendering of a profile.  Used by the verification cache
    to persist the profile of the solve that produced a cached answer, so
    warm [~profile:true] runs reconstruct identical hot-spot tables
    without re-solving.  The format is a cache-entry detail — the public
    report schema remains [Profile_report]'s. *)

val of_json : Vbase.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t) = Ok t].  Malformed input
    is an [Error] (the cache treats it as a miss), never an exception. *)
