type t = Bool | Int | Bv of int | Usort of string

let equal a b =
  match (a, b) with
  | Bool, Bool | Int, Int -> true
  | Bv n, Bv m -> n = m
  | Usort s, Usort t -> String.equal s t
  | (Bool | Int | Bv _ | Usort _), _ -> false

let compare = Stdlib.compare
let hash = Hashtbl.hash

let to_string = function
  | Bool -> "Bool"
  | Int -> "Int"
  | Bv n -> Printf.sprintf "(_ BitVec %d)" n
  | Usort s -> s

let pp fmt s = Format.pp_print_string fmt (to_string s)
