(** Eager bit-blasting of bit-vector terms into a SAT solver.

    This is the engine behind the paper's [by (bit_vector)] proof mode
    (§3.3): an isolated query whose variables are reinterpreted as
    bit-vectors is translated into CNF, keeping bit-vector reasoning away
    from the integer queries.

    Each bit-vector term gets one SAT literal per bit (LSB first);
    operations emit gate clauses on construction. *)

type t
(** A blasting context: the underlying SAT solver plus a cache mapping
    bit-vector terms to their literal arrays. *)

val create : Sat.t -> t
(** A fresh context emitting clauses into the given SAT solver. *)

val term_bits : t -> Term.t -> int array
(** Literals for each bit of a bit-vector-sorted term, emitting defining
    clauses as needed.  Uninterpreted constants get fresh variables. *)

val atom_literal : t -> Term.t -> int
(** Literal equivalent to a boolean atom over bit-vectors ([Eq] at a BV
    sort, [Bule]/[Bult]); emits defining clauses. *)
