(* EPR: fragment check, skolemization, sort-graph acyclicity, finite
   grounding. *)

(* ------------------------------------------------------------------ *)
(* Skolemization (local copy: positive-polarity NNF with skolem
   functions over the enclosing universals)                            *)
(* ------------------------------------------------------------------ *)

let rec nnf pol env (t : Term.t) : Term.t =
  match t.Term.node with
  | Term.Not a -> nnf (not pol) env a
  | Term.And xs ->
    if pol then Term.and_ (List.map (nnf pol env) xs) else Term.or_ (List.map (nnf pol env) xs)
  | Term.Or xs ->
    if pol then Term.or_ (List.map (nnf pol env) xs) else Term.and_ (List.map (nnf pol env) xs)
  | Term.Implies (a, b) ->
    if pol then Term.or_ [ nnf false env a; nnf true env b ]
    else Term.and_ [ nnf true env a; nnf false env b ]
  | Term.Iff (a, b) -> nnf pol env (Term.and_ [ Term.implies a b; Term.implies b a ])
  | Term.Ite (c, a, b) when Sort.equal t.Term.sort Sort.Bool ->
    nnf pol env (Term.and_ [ Term.implies c a; Term.implies (Term.not_ c) b ])
  | Term.Forall q ->
    if pol then Term.forall q.Term.qvars (nnf true (env @ q.Term.qvars) q.Term.body)
    else skolemize pol env q
  | Term.Exists q ->
    if pol then skolemize pol env q
    else Term.forall q.Term.qvars (nnf false (env @ q.Term.qvars) q.Term.body)
  | _ -> if pol then t else Term.not_ t

and skolemize pol env (q : Term.quant) =
  let args = List.map (fun (x, s) -> Term.bvar x s) env in
  let arg_sorts = List.map snd env in
  let bindings =
    List.map
      (fun (x, s) -> (x, Term.app (Term.Sym.fresh ("skE_" ^ x) arg_sorts s) args))
      q.Term.qvars
  in
  nnf pol env (Term.subst bindings q.Term.body)

(* ------------------------------------------------------------------ *)
(* Fragment check                                                      *)
(* ------------------------------------------------------------------ *)

let rec first_error f = function
  | [] -> Ok ()
  | x :: rest -> ( match f x with Ok () -> first_error f rest | Error e -> Error e)

let rec check_term (t : Term.t) =
  match t.Term.node with
  | Term.Int_lit _ | Term.Add _ | Term.Sub _ | Term.Mul _ | Term.Neg _ | Term.Le _
  | Term.Lt _ | Term.Idiv _ | Term.Imod _ ->
    Error ("arithmetic is outside EPR: " ^ Term.to_string t)
  | Term.Bv_lit _ | Term.Bv_op _ -> Error ("bit-vectors are outside EPR: " ^ Term.to_string t)
  | Term.App (f, args) ->
    if Sort.equal f.Term.sret Sort.Int then
      Error ("integer-sorted symbol outside EPR: " ^ f.Term.sname)
    else first_error check_term args
  | Term.Forall q | Term.Exists q -> (
    match
      List.find_opt
        (fun (_, s) -> match s with Sort.Usort _ -> false | _ -> true)
        q.Term.qvars
    with
    | Some (x, s) ->
      Error (Printf.sprintf "quantified variable %s has non-EPR sort %s" x (Sort.to_string s))
    | None -> check_term q.Term.body)
  | Term.Eq (a, b) -> first_error check_term [ a; b ]
  | Term.Not a -> check_term a
  | Term.And xs | Term.Or xs -> first_error check_term xs
  | Term.Implies (a, b) | Term.Iff (a, b) -> first_error check_term [ a; b ]
  | Term.Ite (a, b, c) -> first_error check_term [ a; b; c ]
  | Term.True | Term.False | Term.Bvar _ -> Ok ()

(* Collect all function symbols appearing in the (skolemized) assertions. *)
let collect_syms ts =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t ->
      ignore
        (Term.fold_subterms
           (fun () s ->
             match s.Term.node with
             | Term.App (f, _) -> Hashtbl.replace tbl f.Term.sid f
             | _ -> ())
           () t))
    ts;
  Hashtbl.fold (fun _ f acc -> f :: acc) tbl []

(* Sort graph acyclicity: for each symbol with arguments, edges from each
   argument sort to the return sort.  A cycle means an unbounded Herbrand
   universe.  The cycle check proper is the shared SCC machinery in
   [Vbase.Graph]: a sort participates in a cycle iff its strongly-connected
   component is cyclic. *)
let acyclic syms =
  (* Number the sorts that appear as argument or return of some symbol. *)
  let ids = Hashtbl.create 16 in
  let sorts = ref [] in
  let id_of s =
    match Hashtbl.find_opt ids s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.add ids s i;
      sorts := s :: !sorts;
      i
  in
  let edges = ref [] in
  List.iter
    (fun (f : Term.sym) ->
      if f.Term.sargs <> [] && not (Sort.equal f.Term.sret Sort.Bool) then begin
        let ret = id_of f.Term.sret in
        List.iter (fun a -> edges := (id_of a, ret) :: !edges) f.Term.sargs
      end)
    syms;
  let n = Hashtbl.length ids in
  let g = Vbase.Graph.create n in
  List.iter (fun (u, v) -> Vbase.Graph.add_edge g u v) !edges;
  let sort_of = Array.make (max n 1) Sort.Bool in
  Hashtbl.iter (fun s i -> sort_of.(i) <- s) ids;
  match
    List.find_opt (Vbase.Graph.is_cyclic_component g) (Vbase.Graph.scc g)
  with
  | Some (v :: _) ->
    Error ("sort dependency cycle through " ^ Sort.to_string sort_of.(v))
  | Some [] | None -> Ok ()

let check_fragment ts =
  match first_error check_term ts with
  | Error e -> Error e
  | Ok () ->
    (* Check acyclicity on the skolemized form (skolem functions count). *)
    let sk = List.map (nnf true []) ts in
    acyclic (collect_syms sk)

(* ------------------------------------------------------------------ *)
(* Finite universe and grounding                                       *)
(* ------------------------------------------------------------------ *)

exception Too_big

(* Compute, per uninterpreted sort, the closed Herbrand universe. *)
let universe ~max_universe ts =
  let syms = collect_syms ts in
  let uni : (Sort.t, Term.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  let bucket s =
    match Hashtbl.find_opt uni s with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add uni s r;
      r
  in
  let add s tm =
    let b = bucket s in
    if not (List.exists (Term.equal tm) !b) then begin
      incr total;
      if !total > max_universe then raise Too_big;
      b := tm :: !b
    end
  in
  (* Constants first. *)
  List.iter
    (fun (f : Term.sym) ->
      if f.Term.sargs = [] && not (Sort.equal f.Term.sret Sort.Bool) then
        add f.Term.sret (Term.const f))
    syms;
  (* Sorts quantified over but empty get a witness. *)
  let need_witness = Hashtbl.create 8 in
  List.iter
    (fun t ->
      ignore
        (Term.fold_subterms
           (fun () s ->
             match s.Term.node with
             | Term.Forall q | Term.Exists q ->
               List.iter (fun (_, srt) -> Hashtbl.replace need_witness srt ()) q.Term.qvars
             | _ -> ())
           () t))
    ts;
  Hashtbl.iter
    (fun srt () ->
      if !(bucket srt) = [] then add srt (Term.const (Term.Sym.fresh "witness" [] srt)))
    need_witness;
  (* Saturate under function application (terminates by acyclicity). *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Term.sym) ->
        if f.Term.sargs <> [] && not (Sort.equal f.Term.sret Sort.Bool) then begin
          (* Enumerate argument tuples from the current universe. *)
          let rec tuples acc = function
            | [] -> [ List.rev acc ]
            | s :: rest ->
              List.concat_map (fun v -> tuples (v :: acc) rest) !(bucket s)
          in
          List.iter
            (fun args ->
              if List.length args = List.length f.Term.sargs then begin
                let tm = Term.app f args in
                let b = bucket f.Term.sret in
                if not (List.exists (Term.equal tm) !b) then begin
                  incr total;
                  if !total > max_universe then raise Too_big;
                  b := tm :: !b;
                  changed := true
                end
              end)
            (tuples [] f.Term.sargs)
        end)
      syms
  done;
  fun s -> ( match Hashtbl.find_opt uni s with Some r -> !r | None -> [])

(* Expand quantifiers over the universe. *)
let rec expand uni (t : Term.t) : Term.t =
  match t.Term.node with
  | Term.Forall q | Term.Exists q ->
    let rec enum subst = function
      | [] -> [ expand uni (Term.subst subst q.Term.body) ]
      | (x, s) :: rest ->
        List.concat_map (fun v -> enum ((x, v) :: subst) rest) (uni s)
    in
    let bodies = enum [] q.Term.qvars in
    (match t.Term.node with
    | Term.Forall _ -> Term.and_ bodies
    | _ -> Term.or_ bodies)
  | Term.And xs -> Term.and_ (List.map (expand uni) xs)
  | Term.Or xs -> Term.or_ (List.map (expand uni) xs)
  | Term.Not a -> Term.not_ (expand uni a)
  | _ -> t

let solve ?config ?(max_universe = 4000) ts =
  let fail reason =
    {
      Solver.answer = Solver.Unknown reason;
      stats =
        {
          Solver.rounds = 0;
          instances = 0;
          matches_tried = 0;
          conflicts = 0;
          decisions = 0;
          query_bytes = 0;
          time_s = 0.0;
          t_sat = 0.0;
          t_theory = 0.0;
          t_ematch = 0.0;
        };
      model = [];
      profile = Profile.empty;
      cert = None;
    }
  in
  match check_fragment ts with
  | Error e -> fail ("not in EPR: " ^ e)
  | Ok () -> (
    let sk = List.map (nnf true []) ts in
    try
      let uni = universe ~max_universe sk in
      let ground = List.map (expand uni) sk in
      Solver.solve ?config ground
    with Too_big -> fail "EPR universe too large")

let check_valid ?config ?max_universe ?(hyps = []) goal =
  solve ?config ?max_universe (hyps @ [ Term.not_ goal ])
