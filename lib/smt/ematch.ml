type quant_entry = {
  qterm : Term.t;
  q : Term.quant;
  qguard : int option;
  groups : Term.t list list;
  label : string; (* stable profile identity (Profile.label_of) *)
  heads : string list; (* trigger head-symbol names, sorted *)
  mutable produced : int; (* instances generated so far (fuel accounting) *)
  mutable matched : int; (* candidate substitutions considered *)
  mutable duplicates : int; (* candidates discarded by the dedup table *)
  mutable first_round : int; (* 1-based round of first emission; 0 = never *)
  mutable last_round : int;
}

type instance = { quant : Term.t; guard : int option; body : Term.t }

type t = {
  policy : Triggers.policy;
  by_head : (int, Term.t list ref) Hashtbl.t; (* sym id -> ground app terms *)
  by_sort : (Sort.t, Term.t list ref) Hashtbl.t; (* ground leaf terms by sort *)
  indexed : (int, unit) Hashtbl.t; (* term tids already indexed *)
  mutable quants : quant_entry list;
  quant_ids : (int, unit) Hashtbl.t;
  seen_instances : (int * int list, unit) Hashtbl.t; (* (quant tid, arg ids) *)
  mutable n_instances : int;
  mutable n_matches_tried : int;
  mutable round_no : int; (* instantiation rounds run so far *)
}

let create policy =
  {
    policy;
    by_head = Hashtbl.create 64;
    by_sort = Hashtbl.create 16;
    indexed = Hashtbl.create 256;
    quants = [];
    quant_ids = Hashtbl.create 16;
    seen_instances = Hashtbl.create 256;
    n_instances = 0;
    n_matches_tried = 0;
    round_no = 0;
  }

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl key r;
    r

let is_ground t = Term.free_bvars t = []

let add_ground t tm =
  Term.fold_subterms
    (fun () s ->
      if not (Hashtbl.mem t.indexed s.Term.tid) then begin
        match s.Term.node with
        | Term.Forall _ | Term.Exists _ -> ()
        | Term.App (f, args) when is_ground s ->
          Hashtbl.add t.indexed s.Term.tid ();
          if args <> [] then begin
            let b = bucket t.by_head f.Term.sid in
            b := s :: !b
          end
          else begin
            let b = bucket t.by_sort s.Term.sort in
            b := s :: !b
          end
        | Term.Int_lit _ when is_ground s ->
          Hashtbl.add t.indexed s.Term.tid ();
          let b = bucket t.by_sort s.Term.sort in
          b := s :: !b
        | _ -> ()
      end)
    () tm

let add_quant t ~guard tm =
  if not (Hashtbl.mem t.quant_ids tm.Term.tid) then begin
    Hashtbl.add t.quant_ids tm.Term.tid ();
    match tm.Term.node with
    | Term.Forall q ->
      let groups = Triggers.select t.policy q in
      let patterns = List.concat groups in
      let heads =
        List.filter_map
          (fun (p : Term.t) ->
            match p.Term.node with Term.App (f, _) -> Some f.Term.sname | _ -> None)
          patterns
        |> List.sort_uniq compare
      in
      let label = Profile.label_of ~nvars:(List.length q.Term.qvars) ~patterns in
      t.quants <-
        {
          qterm = tm;
          q;
          qguard = guard;
          groups;
          label;
          heads;
          produced = 0;
          matched = 0;
          duplicates = 0;
          first_round = 0;
          last_round = 0;
        }
        :: t.quants;
      (* Ground subterms of the body seed the index, so that axioms can
         instantiate even when no ground assertion mentions their symbols. *)
      add_ground t q.Term.body
    | _ -> invalid_arg "Ematch.add_quant: not a forall"
  end

(* --- congruence-aware matching -------------------------------------- *)

(* The optional [euf] makes matching work modulo the current E-graph (as in
   production SMT solvers): a pattern subterm can match any term in the
   candidate's equivalence class.  Member exploration is capped to keep
   matching linear-ish. *)

let members_cap = 12

let class_members euf (c : Term.t) =
  match euf with
  | None -> [ c ]
  | Some e ->
    let ms = Euf.class_members e c in
    let ms = if List.exists (Term.equal c) ms then ms else c :: ms in
    List.filteri (fun i _ -> i < members_cap) ms

let equal_mod euf a b =
  Term.equal a b
  ||
  match euf with
  | None -> false
  | Some e -> ( match (Euf.class_id e a, Euf.class_id e b) with
    | Some x, Some y -> x = y
    | _ -> false)

let rec pmatch t ~euf subst (pat : Term.t) (cand : Term.t) =
  t.n_matches_tried <- t.n_matches_tried + 1;
  match pat.Term.node with
  | Term.Bvar (x, s) -> (
    match List.assoc_opt x subst with
    | Some bound -> if equal_mod euf bound cand then Some subst else None
    | None -> if Sort.equal s cand.Term.sort then Some ((x, cand) :: subst) else None)
  | _ ->
    if Term.free_bvars pat = [] then
      if equal_mod euf pat cand then Some subst else None
    else
      (* Try a structural match against each member of the candidate's
         equivalence class. *)
      List.find_map (fun c' -> shape_match t ~euf subst pat c') (class_members euf cand)

and shape_match t ~euf subst (pat : Term.t) (cand : Term.t) =
  match (pat.Term.node, cand.Term.node) with
  | Term.App (f, ps), Term.App (g, cs) when Term.Sym.equal f g -> match_lists t ~euf subst ps cs
  | Term.Eq (p1, p2), Term.Eq (c1, c2) -> match_lists t ~euf subst [ p1; p2 ] [ c1; c2 ]
  | Term.Not p, Term.Not c -> pmatch t ~euf subst p c
  | Term.Add ps, Term.Add cs when List.length ps = List.length cs ->
    match_lists t ~euf subst ps cs
  | Term.Sub (p1, p2), Term.Sub (c1, c2)
  | Term.Mul (p1, p2), Term.Mul (c1, c2)
  | Term.Le (p1, p2), Term.Le (c1, c2)
  | Term.Lt (p1, p2), Term.Lt (c1, c2)
  | Term.Idiv (p1, p2), Term.Idiv (c1, c2)
  | Term.Imod (p1, p2), Term.Imod (c1, c2) -> match_lists t ~euf subst [ p1; p2 ] [ c1; c2 ]
  | Term.Neg p, Term.Neg c -> pmatch t ~euf subst p c
  | Term.Ite (p1, p2, p3), Term.Ite (c1, c2, c3) ->
    match_lists t ~euf subst [ p1; p2; p3 ] [ c1; c2; c3 ]
  | _ -> None

and match_lists t ~euf subst ps cs =
  match (ps, cs) with
  | [], [] -> Some subst
  | p :: ps, c :: cs -> (
    match pmatch t ~euf subst p c with
    | Some s -> match_lists t ~euf s ps cs
    | None -> None)
  | _ -> None

let pattern_candidates t (pat : Term.t) =
  match pat.Term.node with
  | Term.App (f, _ :: _) -> (
    match Hashtbl.find_opt t.by_head f.Term.sid with Some r -> !r | None -> [])
  | _ -> []

let group_matches t ~euf group =
  let rec go substs = function
    | [] -> substs
    | pat :: rest ->
      let cands = pattern_candidates t pat in
      let substs' =
        List.concat_map
          (fun subst ->
            (* A pattern's top-level candidates come straight from the
               head-symbol index (class exploration happens on children). *)
            List.filter_map (fun c -> shape_match t ~euf subst pat c) cands)
          substs
      in
      if substs' = [] then [] else go substs' rest
  in
  go [ [] ] group

let sort_enumeration t (q : Term.quant) ~cap =
  let rec go subst = function
    | [] -> [ subst ]
    | (x, s) :: rest ->
      let terms = match Hashtbl.find_opt t.by_sort s with Some r -> !r | None -> [] in
      let terms = List.filteri (fun i _ -> i < cap) terms in
      List.concat_map (fun c -> go ((x, c) :: subst) rest) terms
  in
  go [] q.Term.qvars

(* Dedup keys use plain term ids: EUF class ids are not stable across
   rounds (each final check rebuilds the closure), so keying on them can
   collide two genuinely different instances and silently suppress a
   needed one.  Congruent-duplicate instances are merely redundant. *)
let canon_id _euf (tm : Term.t) = Term.hash tm

let round ?euf ?(max_per_quant = max_int) t ~max_instances =
  t.round_no <- t.round_no + 1;
  (* Phase 1: collect fresh instances per quantifier (respecting fuel). *)
  let per_quant =
    List.map
      (fun entry ->
        let fresh = ref [] in
        let n_fresh = ref 0 in
        let consider subst =
          if entry.produced + !n_fresh < max_per_quant && !n_fresh < max_instances then begin
            entry.matched <- entry.matched + 1;
            let args =
              List.map
                (fun (x, _) ->
                  match List.assoc_opt x subst with Some u -> canon_id euf u | None -> min_int)
                entry.q.Term.qvars
            in
            let key = (entry.qterm.Term.tid, args) in
            if not (Hashtbl.mem t.seen_instances key) then begin
              Hashtbl.add t.seen_instances key ();
              incr n_fresh;
              fresh := (entry, subst) :: !fresh
            end
            else entry.duplicates <- entry.duplicates + 1
          end
        in
        (if entry.groups = [] then
           List.iter consider (sort_enumeration t entry.q ~cap:8)
         else
           List.iter
             (fun group -> List.iter consider (group_matches t ~euf group))
             entry.groups);
        List.rev !fresh)
      t.quants
  in
  (* Phase 2: emit fairly, round-robin across quantifiers, so noisy
     quantifiers cannot starve the others within the per-round budget. *)
  let queues = Array.of_list per_quant in
  let queues = Array.map (fun l -> ref l) queues in
  let out = ref [] in
  let n_out = ref 0 in
  let emitted = ref true in
  while !n_out < max_instances && !emitted do
    emitted := false;
    Array.iter
      (fun q ->
        match !q with
        | [] -> ()
        | (entry, subst) :: rest when !n_out < max_instances ->
          q := rest;
          emitted := true;
          let body = Term.subst subst entry.q.Term.body in
          let leftover =
            List.filter (fun (x, _) -> not (List.mem_assoc x subst)) entry.q.Term.qvars
          in
          let body = Term.forall leftover body in
          t.n_instances <- t.n_instances + 1;
          entry.produced <- entry.produced + 1;
          if entry.first_round = 0 then entry.first_round <- t.round_no;
          entry.last_round <- t.round_no;
          incr n_out;
          out := { quant = entry.qterm; guard = entry.qguard; body } :: !out
        | _ -> ())
      queues
  done;
  (* Instances collected but not emitted must be re-discoverable later. *)
  Array.iter
    (List.iter (fun (entry, subst) ->
         let args =
           List.map
             (fun (x, _) ->
               match List.assoc_opt x subst with Some u -> canon_id euf u | None -> min_int)
             entry.q.Term.qvars
         in
         Hashtbl.remove t.seen_instances (entry.qterm.Term.tid, args))
     )
    (Array.map (fun q -> !q) queues);
  !out

let stats_instances t = t.n_instances
let stats_matches_tried t = t.n_matches_tried

let profile t : Profile.quant_profile list =
  Profile.sort_quants
    (List.map
       (fun e ->
         {
           Profile.q_label = e.label;
           q_heads = e.heads;
           q_nvars = List.length e.q.Term.qvars;
           q_instances = e.produced;
           q_matched = e.matched;
           q_duplicates = e.duplicates;
           q_first_round = e.first_round;
           q_last_round = e.last_round;
         })
       t.quants)
