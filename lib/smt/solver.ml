module Rat = Vbase.Rat
module Bigint = Vbase.Bigint

type budget = {
  deadline_s : float;
      (* wall-clock budget per solve; exceeded -> Unknown "timeout" *)
  max_rounds : int;
  max_instances_per_round : int;
  max_instances_per_quant : int;
      (* fuel-style cap per quantifier, bounding definitional unfolding
         chains (Dafny's fuel plays this role) *)
  sat_conflict_budget : int;
  bb_budget : int;
  combination_pairs_per_round : int;
  ring_pairs_budget : int;
}

let default_budget =
  {
    deadline_s = 300.0;
    max_rounds = 12;
    max_instances_per_round = 600;
    max_instances_per_quant = 120;
    sat_conflict_budget = 400_000;
    bb_budget = 2000;
    combination_pairs_per_round = 24;
    ring_pairs_budget = 2000;
  }

type config = {
  trigger_policy : Triggers.policy;
  budget : budget;
  certify : bool;
      (* record a replayable proof certificate for Unsat answers; off by
         default (emission threads extra bookkeeping through the SAT and
         LIA cores) *)
}

let default_config =
  { trigger_policy = Triggers.Conservative; budget = default_budget; certify = false }

(* The canonical one-line rendering of a budget, a component of the
   verification cache's fingerprints: a cached answer obtained under one
   budget must not satisfy a query running under another (a looser budget
   might succeed where the recorded solve gave up). *)
let budget_fingerprint (b : budget) =
  Printf.sprintf "deadline=%h;rounds=%d;ipr=%d;ipq=%d;sat=%d;bb=%d;comb=%d;ring=%d"
    b.deadline_s b.max_rounds b.max_instances_per_round b.max_instances_per_quant
    b.sat_conflict_budget b.bb_budget b.combination_pairs_per_round b.ring_pairs_budget

type answer = Unsat | Sat | Unknown of string

type stats = {
  rounds : int;
  instances : int;
  matches_tried : int;
  conflicts : int;
  decisions : int;
  query_bytes : int;
  time_s : float;
  t_sat : float;
  t_theory : float;
  t_ematch : float;
}

type result = {
  answer : answer;
  stats : stats;
  model : (string * string) list;
  profile : Profile.t;
  cert : Cert.t option;
      (* present iff [answer = Unsat] and the solve ran with
         [config.certify = true] *)
}

type state = {
  cfg : config;
  sat : Sat.t;
  bb : Bitblast.t;
  em : Ematch.t;
  lit_of : (int, int) Hashtbl.t; (* formula tid -> SAT literal (Tseitin) *)
  atom_of_var : (int, Term.t) Hashtbl.t; (* SAT var -> theory atom *)
  mutable atom_vars : int list; (* vars that carry theory atoms *)
  quant_guard : (int, int) Hashtbl.t; (* forall tid -> guard SAT literal *)
  eq_split_done : (int, unit) Hashtbl.t; (* Eq atom tid -> split lemma added *)
  comb_pairs_done : (int * int, unit) Hashtbl.t;
  euf_prop_done : (int * int, unit) Hashtbl.t; (* EUF->LIA propagation lemmas *)
  proxy_of : (int, Term.t) Hashtbl.t; (* purification proxies by tid *)
  divmod_of : (int, Term.t * Term.t) Hashtbl.t; (* Idiv/Imod tid -> (q, r) *)
  ite_of : (int, Term.t) Hashtbl.t;
  mutable pending : Term.t list; (* assertions awaiting processing *)
  mutable query_bytes : int;
  mutable const_true_lit : int option;
  mutable has_quants : bool;
  mutable t_sat : float;
  mutable t_theory : float;
  mutable t_ematch : float;
  (* Fine-grained phase accounting inside the theory final check (t_theory
     = t_euf + t_lia + t_comb up to loop overhead), plus per-theory
     conflict and lemma counters.  Always on: a handful of gettimeofday
     calls per final check is noise next to the check itself, and it is
     what makes every result carry a Profile without a config switch. *)
  mutable t_euf : float;
  mutable t_lia : float;
  mutable t_comb : float;
  mutable n_euf_conflicts : int;
  mutable n_lia_conflicts : int;
  mutable n_theory_lemmas : int;
  mutable inst_rounds : int;
  lia : Lia.t; (* persistent across rounds: tableau and slack forms survive *)
  lin_cache : (int, (Rat.t * Term.t) list * Rat.t) Hashtbl.t;
  app_cache : (int, Term.t list) Hashtbl.t; (* atom tid -> App subterms *)
  prep_cache : (int * bool, Lia.prepared list) Hashtbl.t;
      (* (atom tid, polarity) -> prepared LIA constraints *)
  mutable deadline : float; (* absolute wall deadline for this solve *)
  cert : Cert.builder option; (* Some iff cfg.certify *)
  justs : (int, Cert.just) Hashtbl.t; (* proof step id -> theory justification *)
  mutable input_tag : int; (* current Cert input-step tag for trusted clauses *)
}

let create_state cfg =
  let sat = Sat.create () in
  let lia = Lia.create () in
  if cfg.certify then begin
    Sat.enable_proof sat;
    Lia.set_certify lia true
  end;
  {
    cfg;
    sat;
    bb = Bitblast.create sat;
    em = Ematch.create cfg.trigger_policy;
    lit_of = Hashtbl.create 256;
    atom_of_var = Hashtbl.create 256;
    atom_vars = [];
    quant_guard = Hashtbl.create 16;
    eq_split_done = Hashtbl.create 16;
    comb_pairs_done = Hashtbl.create 16;
    euf_prop_done = Hashtbl.create 16;
    proxy_of = Hashtbl.create 64;
    divmod_of = Hashtbl.create 16;
    ite_of = Hashtbl.create 16;
    pending = [];
    query_bytes = 0;
    const_true_lit = None;
    has_quants = false;
    t_sat = 0.0;
    t_theory = 0.0;
    t_ematch = 0.0;
    t_euf = 0.0;
    t_lia = 0.0;
    t_comb = 0.0;
    n_euf_conflicts = 0;
    n_lia_conflicts = 0;
    n_theory_lemmas = 0;
    inst_rounds = 0;
    lia;
    lin_cache = Hashtbl.create 256;
    app_cache = Hashtbl.create 256;
    prep_cache = Hashtbl.create 256;
    deadline = infinity;
    cert = (if cfg.certify then Some (Cert.create_builder ()) else None);
    justs = Hashtbl.create 64;
    input_tag = 0;
  }

(* Run [f] with input steps tagged [tag] (instantiation = 1, bit-blasting
   = 2); restores the enclosing tag, so a bit-blasted atom created while
   asserting an instance ends up tagged 2, and Tseitin clauses after it
   revert to the instance tag. *)
let with_input_tag st tag f =
  match st.cert with
  | None -> f ()
  | Some _ ->
    let old = st.input_tag in
    st.input_tag <- tag;
    Sat.set_input_tag st.sat tag;
    let r = f () in
    st.input_tag <- old;
    Sat.set_input_tag st.sat old;
    r

(* Attach a theory justification to the clause just passed to
   [Sat.add_clause] (a no-op when certification is off or the clause was
   dropped as a tautology). *)
let justify st (just : unit -> Cert.just) =
  match st.cert with
  | None -> ()
  | Some _ ->
    let step = Sat.last_input_step st.sat in
    if step >= 0 then Hashtbl.replace st.justs step (just ())

let lit_true st =
  match st.const_true_lit with
  | Some l -> l
  | None ->
    let v = Sat.new_var st.sat in
    Sat.add_clause st.sat [ Sat.pos v ];
    st.const_true_lit <- Some (Sat.pos v);
    Sat.pos v

(* ------------------------------------------------------------------ *)
(* Preprocessing: purification, div/mod and ite compilation            *)
(* ------------------------------------------------------------------ *)

let is_composite_int (t : Term.t) =
  Sort.equal t.Term.sort Sort.Int
  &&
  match t.Term.node with
  | Term.Add _ | Term.Sub _ | Term.Mul _ | Term.Neg _ | Term.Idiv _ | Term.Imod _ | Term.Ite _ ->
    true
  | _ -> false

let is_ground t = Term.free_bvars t = []

(* Rewrites a term bottom-up; [emit] receives side assertions (already in
   purified form). *)
let rec purify st ~emit (t : Term.t) : Term.t =
  let recur x = purify st ~emit x in
  match t.Term.node with
  | Term.True | Term.False | Term.Int_lit _ | Term.Bv_lit _ | Term.Bvar _ -> t
  | Term.Forall q ->
    (* Under binders, only rewrite what stays ground. *)
    Term.forall ~triggers:q.Term.triggers q.Term.qvars (recur q.Term.body)
  | Term.Exists q -> Term.exists ~triggers:q.Term.triggers q.Term.qvars (recur q.Term.body)
  | Term.Ite (c, a, b)
    when (not (Sort.equal t.Term.sort Sort.Bool))
         && (match t.Term.sort with Sort.Bv _ -> false | _ -> true)
         && is_ground t -> (
    match Hashtbl.find_opt st.ite_of t.Term.tid with
    | Some k -> k
    | None ->
      let c = recur c and a = recur a and b = recur b in
      let k = Term.const (Term.Sym.fresh "ite" [] t.Term.sort) in
      Hashtbl.add st.ite_of t.Term.tid k;
      emit (Term.implies c (Term.eq k a));
      emit (Term.implies (Term.not_ c) (Term.eq k b));
      k)
  | Term.Idiv (a, b) | Term.Imod (a, b) -> (
    let is_div = match t.Term.node with Term.Idiv _ -> true | _ -> false in
    match b.Term.node with
    | Term.Int_lit v when (not (Bigint.is_zero v)) && is_ground a -> (
      let q, r =
        match Hashtbl.find_opt st.divmod_of (Term.hash (Term.idiv a b)) with
        | Some qr -> qr
        | None ->
          let a' = recur a in
          let q = Term.const (Term.Sym.fresh "divq" [] Sort.Int) in
          let r = Term.const (Term.Sym.fresh "divr" [] Sort.Int) in
          Hashtbl.add st.divmod_of (Term.hash (Term.idiv a b)) (q, r);
          (* a = q*b + r /\ 0 <= r < |b|   (Euclidean) *)
          emit (Term.eq a' (Term.add [ Term.mul q b; r ]));
          emit (Term.le (Term.int_of 0) r);
          emit (Term.lt r (Term.int_lit (Bigint.abs v)));
          (q, r)
      in
      if is_div then q else r)
    | _ ->
      let a = recur a and b = recur b in
      if is_div then Term.idiv a b else Term.imod a b)
  | Term.App (f, args) when args <> [] ->
    let args = List.map recur args in
    let args =
      List.map
        (fun (a : Term.t) ->
          if is_composite_int a && is_ground a then begin
            match Hashtbl.find_opt st.proxy_of a.Term.tid with
            | Some p -> p
            | None ->
              let p = Term.const (Term.Sym.fresh "pur" [] Sort.Int) in
              Hashtbl.add st.proxy_of a.Term.tid p;
              emit (Term.eq p a);
              p
          end
          else a)
        args
    in
    Term.app f args
  | _ ->
    (* Structural recursion via children rebuild. *)
    rebuild_children st ~emit t

and rebuild_children st ~emit t =
  let recur x = purify st ~emit x in
  match t.Term.node with
  | Term.App (f, args) -> Term.app f (List.map recur args)
  | Term.Eq (a, b) -> Term.eq (recur a) (recur b)
  | Term.Not a -> Term.not_ (recur a)
  | Term.And xs -> Term.and_ (List.map recur xs)
  | Term.Or xs -> Term.or_ (List.map recur xs)
  | Term.Implies (a, b) -> Term.implies (recur a) (recur b)
  | Term.Iff (a, b) -> Term.iff (recur a) (recur b)
  | Term.Ite (a, b, c) -> Term.ite (recur a) (recur b) (recur c)
  | Term.Add xs -> Term.add (List.map recur xs)
  | Term.Sub (a, b) -> Term.sub (recur a) (recur b)
  | Term.Mul (a, b) -> Term.mul (recur a) (recur b)
  | Term.Neg a -> Term.neg (recur a)
  | Term.Le (a, b) -> Term.le (recur a) (recur b)
  | Term.Lt (a, b) -> Term.lt (recur a) (recur b)
  | Term.Bv_op (o, xs) -> Term.bv_op o (List.map recur xs)
  | _ -> t

(* ------------------------------------------------------------------ *)
(* NNF with polarity-driven skolemization                              *)
(* ------------------------------------------------------------------ *)

(* [env] holds enclosing universal variables (for skolem arguments). *)
let rec nnf pol (env : (string * Sort.t) list) (t : Term.t) : Term.t =
  match t.Term.node with
  | Term.Not a -> nnf (not pol) env a
  | Term.And xs ->
    if pol then Term.and_ (List.map (nnf pol env) xs)
    else Term.or_ (List.map (nnf pol env) xs)
  | Term.Or xs ->
    if pol then Term.or_ (List.map (nnf pol env) xs)
    else Term.and_ (List.map (nnf pol env) xs)
  | Term.Implies (a, b) ->
    if pol then Term.or_ [ nnf false env a; nnf true env b ]
    else Term.and_ [ nnf true env a; nnf false env b ]
  | Term.Iff (a, b) ->
    (* (a -> b) /\ (b -> a), then by polarity. *)
    nnf pol env (Term.and_ [ Term.implies a b; Term.implies b a ])
  | Term.Ite (c, a, b) when Sort.equal t.Term.sort Sort.Bool ->
    nnf pol env (Term.and_ [ Term.implies c a; Term.implies (Term.not_ c) b ])
  | Term.Forall q ->
    if pol then
      let env' = env @ q.Term.qvars in
      Term.forall ~triggers:q.Term.triggers q.Term.qvars (nnf true env' q.Term.body)
    else skolemize pol env q
  | Term.Exists q ->
    if pol then skolemize pol env q
    else
      let env' = env @ q.Term.qvars in
      Term.forall q.Term.qvars (nnf false env' q.Term.body)
  | _ -> if pol then t else Term.not_ t

and skolemize pol env (q : Term.quant) =
  (* Replace each bound var with a skolem function of the enclosing
     universals. *)
  let args = List.map (fun (x, s) -> Term.bvar x s) env in
  let arg_sorts = List.map snd env in
  let bindings =
    List.map
      (fun (x, s) ->
        let f = Term.Sym.fresh ("sk_" ^ x) arg_sorts s in
        (x, Term.app f args))
      q.Term.qvars
  in
  nnf pol env (Term.subst bindings q.Term.body)

(* ------------------------------------------------------------------ *)
(* Tseitin encoding                                                    *)
(* ------------------------------------------------------------------ *)

let is_bv_atom (t : Term.t) =
  match t.Term.node with
  | Term.Eq (a, _) -> ( match a.Term.sort with Sort.Bv _ -> true | _ -> false)
  | Term.Bv_op ((Term.Bule | Term.Bult), _) -> true
  | _ -> false

let rec formula_lit st (t : Term.t) : int =
  match Hashtbl.find_opt st.lit_of t.Term.tid with
  | Some l -> l
  | None ->
    let l =
      match t.Term.node with
      | Term.True -> lit_true st
      | Term.False -> Sat.lit_negate (lit_true st)
      | Term.Not a -> Sat.lit_negate (formula_lit st a)
      | Term.And xs ->
        let ls = List.map (formula_lit st) xs in
        let p = Sat.pos (Sat.new_var st.sat) in
        List.iter (fun l -> Sat.add_clause st.sat [ Sat.lit_negate p; l ]) ls;
        Sat.add_clause st.sat (p :: List.map Sat.lit_negate ls);
        p
      | Term.Or xs ->
        let ls = List.map (formula_lit st) xs in
        let p = Sat.pos (Sat.new_var st.sat) in
        List.iter (fun l -> Sat.add_clause st.sat [ p; Sat.lit_negate l ]) ls;
        Sat.add_clause st.sat (Sat.lit_negate p :: ls);
        p
      | Term.Forall _ ->
        st.has_quants <- true;
        let g = Sat.pos (Sat.new_var st.sat) in
        Hashtbl.replace st.quant_guard t.Term.tid g;
        Ematch.add_quant st.em ~guard:(Some g) t;
        g
      | Term.Exists _ -> invalid_arg "Solver: exists survived NNF"
      | _ when is_bv_atom t -> with_input_tag st 2 (fun () -> Bitblast.atom_literal st.bb t)
      | Term.Eq _ | Term.Le _ | Term.Lt _ | Term.App _ | Term.Iff _ | Term.Implies _
      | Term.Ite _ -> (
        match t.Term.node with
        | Term.Iff (a, b) ->
          let la = formula_lit st a and lb = formula_lit st b in
          let p = Sat.pos (Sat.new_var st.sat) in
          Sat.add_clause st.sat [ Sat.lit_negate p; Sat.lit_negate la; lb ];
          Sat.add_clause st.sat [ Sat.lit_negate p; la; Sat.lit_negate lb ];
          Sat.add_clause st.sat [ p; la; lb ];
          Sat.add_clause st.sat [ p; Sat.lit_negate la; Sat.lit_negate lb ];
          p
        | Term.Implies (a, b) -> formula_lit st (Term.or_ [ Term.not_ a; b ])
        | Term.Ite (c, a, b) ->
          formula_lit st (Term.and_ [ Term.implies c a; Term.implies (Term.not_ c) b ])
        | _ ->
          (* Theory atom. *)
          let v = Sat.new_var st.sat in
          Hashtbl.replace st.atom_of_var v t;
          st.atom_vars <- v :: st.atom_vars;
          Ematch.add_ground st.em t;
          Sat.pos v)
      | _ ->
        invalid_arg ("Solver: cannot encode as formula: " ^ Term.to_string t)
    in
    Hashtbl.replace st.lit_of t.Term.tid l;
    l

(* Assert a preprocessed formula, optionally under a guard literal. *)
let rec assert_nnf st ~guard (t : Term.t) =
  match t.Term.node with
  | Term.And xs -> List.iter (assert_nnf st ~guard) xs
  | Term.Forall _ when guard = None ->
    st.has_quants <- true;
    Ematch.add_quant st.em ~guard:None t
  | Term.Or xs when guard = None ->
    Sat.add_clause st.sat (List.map (formula_lit st) xs)
  | Term.True -> ()
  | _ -> (
    let l = formula_lit st t in
    match guard with
    | None -> Sat.add_clause st.sat [ l ]
    | Some g -> Sat.add_clause st.sat [ Sat.lit_negate g; l ])

(* Full pipeline for a new assertion. *)
let assert_formula st ~guard (t : Term.t) =
  st.query_bytes <- st.query_bytes + Term.printed_size t;
  let side = ref [] in
  let t = purify st ~emit:(fun a -> side := a :: !side) t in
  let t = nnf true [] t in
  assert_nnf st ~guard t;
  (* Side conditions (purification definitions) are unconditional. *)
  List.iter
    (fun a ->
      let a = nnf true [] a in
      assert_nnf st ~guard:None a)
    !side

(* ------------------------------------------------------------------ *)
(* Theory final check                                                  *)
(* ------------------------------------------------------------------ *)

(* Linearize an Int term into (coeffs over opaque terms, constant). *)
let rec linearize (t : Term.t) : (Rat.t * Term.t) list * Rat.t =
  match t.Term.node with
  | Term.Int_lit v -> ([], Rat.of_bigint v)
  | Term.Add xs ->
    List.fold_left
      (fun (cs, k) x ->
        let cs', k' = linearize x in
        (cs' @ cs, Rat.add k k'))
      ([], Rat.zero) xs
  | Term.Sub (a, b) ->
    let ca, ka = linearize a in
    let cb, kb = linearize b in
    (ca @ List.map (fun (c, v) -> (Rat.neg c, v)) cb, Rat.sub ka kb)
  | Term.Neg a ->
    let ca, ka = linearize a in
    (List.map (fun (c, v) -> (Rat.neg c, v)) ca, Rat.neg ka)
  | Term.Mul (a, b) -> (
    match (a.Term.node, b.Term.node) with
    | Term.Int_lit v, _ ->
      let cb, kb = linearize b in
      let r = Rat.of_bigint v in
      (List.map (fun (c, x) -> (Rat.mul r c, x)) cb, Rat.mul r kb)
    | _, Term.Int_lit v ->
      let ca, ka = linearize a in
      let r = Rat.of_bigint v in
      (List.map (fun (c, x) -> (Rat.mul r c, x)) ca, Rat.mul r ka)
    | _ -> ([ (Rat.one, t) ], Rat.zero))
  | _ -> ([ (Rat.one, t) ], Rat.zero)

type round_outcome =
  | R_continue (* lemma/blocking clause added; re-solve *)
  | R_model_ok of Euf.t (* theories agree; the E-graph feeds E-matching *)
  | R_unknown of string

exception Give_up of string

let dbg_r_euf_conf = ref 0
let dbg_r_lia_conf = ref 0
let dbg_r_eqsplit = ref 0
let dbg_r_prop = ref 0
let dbg_r_guess = ref 0
let dbg_euf = ref 0.0
let dbg_lia_build = ref 0.0
let dbg_lia_check = ref 0.0
let dbg_comb = ref 0.0
let dbg_enabled = Sys.getenv_opt "SMT_DEBUG" <> None

let final_check st =
  (* Gather the current assignment of theory atoms. *)
  let assigned =
    List.rev_map (fun v -> (v, Hashtbl.find st.atom_of_var v, Sat.value st.sat v)) st.atom_vars
  in
  let assigned = Array.of_list assigned in
  let blocking core =
    (* Build a blocking clause from reason indices into [assigned]. *)
    let lits =
      List.filter_map
        (fun i ->
          if i < 0 then None
          else begin
            let v, _, value = assigned.(i) in
            Some (if value then Sat.neg v else Sat.pos v)
          end)
        core
    in
    Sat.add_clause st.sat lits
  in
  (* Certificate bookkeeping.  [euf_assumption] records the theory meaning
     of an assigned atom's literal in the certificate's atom table and
     returns the literal; [None] if the atom is outside the certified EUF
     fragment (the justification then degrades to a trusted step). *)
  let euf_assumption bd i =
    let v, atom, value = assigned.(i) in
    let lit = if value then Sat.pos v else Sat.neg v in
    match atom.Term.node with
    | Term.Eq (x, y) when not (is_bv_atom atom) ->
      Cert.lit_eq bd lit (value, Cert.intern_term bd x, Cert.intern_term bd y);
      Some lit
    | Term.App _ when Sort.equal atom.Term.sort Sort.Bool ->
      let rhs = if value then Term.tru else Term.fls in
      Cert.lit_eq bd lit (true, Cert.intern_term bd atom, Cert.intern_term bd rhs);
      Some lit
    | _ -> None
  in
  let euf_just bd core =
    let ok = ref true in
    let lits =
      List.filter_map
        (fun i ->
          if i < 0 then None
          else
            match euf_assumption bd i with
            | Some l -> Some l
            | None ->
              ok := false;
              None)
        core
    in
    if !ok then Cert.J_euf lits else Cert.J_trusted "euf"
  in
  (* --- EUF --- *)
  let dbg_t0 = Unix.gettimeofday () in
  let euf = Euf.create () in
  Euf.assert_diseq euf Term.tru Term.fls ~reason:(-2);
  Array.iteri
    (fun i (_, atom, value) ->
      (* Register all application subterms for congruence (cached per atom:
         the walk itself is the expensive part on big contexts). *)
      let apps =
        match Hashtbl.find_opt st.app_cache atom.Term.tid with
        | Some l -> l
        | None ->
          let l =
            Term.fold_subterms
              (fun acc s -> match s.Term.node with Term.App _ -> s :: acc | _ -> acc)
              [] atom
          in
          Hashtbl.replace st.app_cache atom.Term.tid l;
          l
      in
      List.iter (fun s -> Euf.add_term euf s) apps;
      match atom.Term.node with
      | Term.Eq (a, b) when not (is_bv_atom atom) ->
        if value then Euf.merge euf a b ~reason:i else Euf.assert_diseq euf a b ~reason:i
      | Term.App (_, _) when Sort.equal atom.Term.sort Sort.Bool ->
        Euf.merge euf atom (if value then Term.tru else Term.fls) ~reason:i
      | _ -> ())
    assigned;
  let d_euf = Unix.gettimeofday () -. dbg_t0 in
  st.t_euf <- st.t_euf +. d_euf;
  if dbg_enabled then dbg_euf := !dbg_euf +. d_euf;
  let euf_t0 = Unix.gettimeofday () in
  let euf_verdict = Euf.check euf in
  st.t_euf <- st.t_euf +. (Unix.gettimeofday () -. euf_t0);
  match euf_verdict with
  | Error core ->
    incr dbg_r_euf_conf;
    st.n_euf_conflicts <- st.n_euf_conflicts + 1;
    blocking core;
    justify st (fun () -> euf_just (Option.get st.cert) core);
    R_continue
  | Ok () -> (
    (* --- LIA --- *)
    let dbg_t1 = Unix.gettimeofday () in
    let lia = st.lia in
    Lia.reset_bounds lia;
    let progress = ref false in
    let to_lia_coeffs cs = List.map (fun (c, tm) -> (c, Lia.var_of_term lia tm)) cs in
    let linearize_cached (a : Term.t) (b : Term.t) key =
      match Hashtbl.find_opt st.lin_cache key with
      | Some r -> r
      | None ->
        let r = linearize (Term.sub a b) in
        Hashtbl.replace st.lin_cache key r;
        r
    in
    (* Trichotomy justification for [l_eq \/ l_lt1 \/ l_lt2]: the equality
       pins [cs . x] to exactly [bound], and the negated strict
       inequalities are the two non-strict bounds.  Register both <=-form
       views so the kernel can match the (f, d) / (-f, -d) pair. *)
    let trichotomy_just bd ~l_eq ~l_lt1 ~l_lt2 cs bound =
      let v_up = Lia.atom_view cs bound ~strict:false ~is_upper:true in
      let v_lo = Lia.atom_view cs bound ~strict:false ~is_upper:false in
      let add lit (c, b) = ignore (Cert.lit_view bd lit c b) in
      add l_eq v_up;
      add l_eq v_lo;
      add (Sat.lit_negate l_lt1) v_lo;
      add (Sat.lit_negate l_lt2) v_up;
      Cert.J_trichotomy (l_eq, l_lt1, l_lt2)
    in
    Array.iteri
      (fun i (v, atom, value) ->
        ignore v;
        match atom.Term.node with
        | Term.Le (a, b) | Term.Lt (a, b) -> (
          match Hashtbl.find_opt st.prep_cache (atom.Term.tid, value) with
          | Some ps -> List.iter (fun p -> Lia.assert_prepared lia p ~reason:i) ps
          | None ->
            let cs, k = linearize_cached a b atom.Term.tid in
            let cs = to_lia_coeffs cs in
            let bound = Rat.neg k in
            let strict = match atom.Term.node with Term.Lt _ -> true | _ -> false in
            (* value true: sum <= bound (or <); false: negation. *)
            let p =
              if value then Lia.prepare lia cs bound ~strict ~is_upper:true
              else Lia.prepare lia cs bound ~strict:(not strict) ~is_upper:false
            in
            Hashtbl.replace st.prep_cache (atom.Term.tid, value) [ p ];
            Lia.assert_prepared lia p ~reason:i)
        | Term.Eq (a, b) when Sort.equal a.Term.sort Sort.Int ->
          if value then begin
            match Hashtbl.find_opt st.prep_cache (atom.Term.tid, true) with
            | Some ps ->
              List.iter (fun p -> Lia.assert_prepared lia p ~reason:i) ps;
              let cs, k = linearize_cached a b atom.Term.tid in
              Lia.record_equation lia (to_lia_coeffs cs) (Rat.neg k) ~reason:i
            | None ->
              let cs, k = linearize_cached a b atom.Term.tid in
              let cs = to_lia_coeffs cs in
              let bound = Rat.neg k in
              let p1 = Lia.prepare lia cs bound ~strict:false ~is_upper:true in
              let p2 = Lia.prepare lia cs bound ~strict:false ~is_upper:false in
              Hashtbl.replace st.prep_cache (atom.Term.tid, true) [ p1; p2 ];
              Lia.assert_prepared lia p1 ~reason:i;
              Lia.assert_prepared lia p2 ~reason:i;
              Lia.record_equation lia cs bound ~reason:i
          end
          else if not (Hashtbl.mem st.eq_split_done atom.Term.tid) then begin
            (* not (a = b)  ==>  a < b \/ b < a *)
            Hashtbl.add st.eq_split_done atom.Term.tid ();
            let l_eq = formula_lit st atom in
            let l_lt1 = formula_lit st (Term.lt a b) in
            let l_lt2 = formula_lit st (Term.lt b a) in
            Sat.add_clause st.sat [ l_eq; l_lt1; l_lt2 ];
            justify st (fun () ->
                let bd = Option.get st.cert in
                let cs, k = linearize_cached a b atom.Term.tid in
                trichotomy_just bd ~l_eq ~l_lt1 ~l_lt2 (to_lia_coeffs cs) (Rat.neg k));
            incr dbg_r_eqsplit;
            progress := true
          end
        | _ -> ())
      assigned;
    let d_lia_build = Unix.gettimeofday () -. dbg_t1 in
    st.t_lia <- st.t_lia +. d_lia_build;
    if dbg_enabled then dbg_lia_build := !dbg_lia_build +. d_lia_build;
    if !progress then begin
      (* Progress here means eq-split lemmas were added. *)
      st.n_theory_lemmas <- st.n_theory_lemmas + 1;
      R_continue
    end
    else begin
      let dbg_t2 = Unix.gettimeofday () in
      let lia_verdict = Lia.check ~max_branch:st.cfg.budget.bb_budget lia in
      let d_lia_check = Unix.gettimeofday () -. dbg_t2 in
      st.t_lia <- st.t_lia +. d_lia_check;
      if dbg_enabled then dbg_lia_check := !dbg_lia_check +. d_lia_check;
      match lia_verdict with
      | Lia.Conflict core ->
        incr dbg_r_lia_conf;
        st.n_lia_conflicts <- st.n_lia_conflicts + 1;
        blocking core;
        justify st (fun () ->
            let bd = Option.get st.cert in
            match Lia.last_cert lia with
            | Some entries ->
              Cert.J_farkas
                (List.map
                   (fun (e : Lia.centry) ->
                     let v, _, value = assigned.(e.Lia.ce_reason) in
                     let lit = if value then Sat.pos v else Sat.neg v in
                     let ix = Cert.lit_view bd lit e.Lia.ce_coeffs e.Lia.ce_bound in
                     (lit, e.Lia.ce_lambda, ix))
                   entries)
            | None -> Cert.J_trusted "lia-search");
        R_continue
      | Lia.Unknown -> R_unknown "arithmetic budget exhausted"
      | Lia.Sat -> (
        (* --- model-based theory combination --- *)
        let dbg_t3 = Unix.gettimeofday () in
        let lemma_added = ref false in
        (* Arithmetic value of a term in the current LIA model, if it has
           one: literals evaluate to themselves; other terms must already
           be registered LIA variables. *)
        let lia_value (tm : Term.t) =
          match tm.Term.node with
          | Term.Int_lit v -> Some (Rat.of_bigint v)
          | _ -> Option.map (Lia.model_value lia) (Lia.find_var lia tm)
        in
        (* EUF -> LIA: congruence-implied equalities the arithmetic model
           misses become lemmas. *)
        Euf.iter_classes euf (fun members ->
            let ints =
              List.filter
                (fun (m : Term.t) -> Sort.equal m.Term.sort Sort.Int)
                members
            in
            match ints with
            | [] | [ _ ] -> ()
            | rep :: rest ->
              List.iter
                (fun m ->
                  if not !lemma_added then begin
                    match (lia_value rep, lia_value m) with
                    | Some vr, Some vm when not (Rat.equal vr vm) -> begin
                      (* explanation => rep = m *)
                      let expl = Euf.explain euf rep m in
                      let clause =
                        List.filter_map
                          (fun i ->
                            if i < 0 then None
                            else begin
                              let v, _, value = assigned.(i) in
                              Some (if value then Sat.neg v else Sat.pos v)
                            end)
                          expl
                      in
                      let l_eq = formula_lit st (Term.eq rep m) in
                      (* Only a real lemma if the equality atom is not
                         already forced true under this assignment. *)
                      Sat.add_clause st.sat (l_eq :: clause);
                      justify st (fun () ->
                          let bd = Option.get st.cert in
                          let head = Sat.lit_negate l_eq in
                          Cert.lit_eq bd head
                            (false, Cert.intern_term bd rep, Cert.intern_term bd m);
                          match euf_just bd expl with
                          | Cert.J_euf lits -> Cert.J_euf (head :: lits)
                          | j -> j);
                      if not (Sat.value st.sat (Sat.lit_var l_eq) && l_eq land 1 = 0) then begin
                        incr dbg_r_prop;
                        st.n_theory_lemmas <- st.n_theory_lemmas + 1;
                        lemma_added := true
                      end
                    end
                    | _ -> ()
                  end)
                rest);
        (* LIA -> EUF: shared terms with equal model values the congruence
           graph has not merged get a three-way split lemma. *)
        if not !lemma_added then begin
          (* Congruence-relevant pairs: arguments at the same position of
             two applications of the same symbol whose classes differ.
             Merging such a pair can fire a congruence; other equalities
             cannot help EUF, so guessing them is wasted work. *)
          let by_sym : (int, Term.t list ref) Hashtbl.t = Hashtbl.create 64 in
          Array.iter
            (fun (_, atom, _) ->
              Term.fold_subterms
                (fun () s ->
                  match s.Term.node with
                  | Term.App (f, _ :: _) -> (
                    match Hashtbl.find_opt by_sym f.Term.sid with
                    | Some r -> if not (List.memq s !r) then r := s :: !r
                    | None -> Hashtbl.add by_sym f.Term.sid (ref [ s ]))
                  | _ -> ())
                () atom)
            assigned;
          let candidate_pairs = ref [] in
          Hashtbl.iter
            (fun _ apps ->
              let arr = Array.of_list !apps in
              let n = Array.length arr in
              for i = 0 to min (n - 1) 40 do
                for j = i + 1 to min (n - 1) 40 do
                  if not (Euf.are_equal euf arr.(i) arr.(j)) then begin
                    match (arr.(i).Term.node, arr.(j).Term.node) with
                    | Term.App (_, args1), Term.App (_, args2) ->
                      List.iter2
                        (fun a1 a2 ->
                          if
                            Sort.equal a1.Term.sort Sort.Int
                            && (not (Term.equal a1 a2))
                            && not (Euf.are_equal euf a1 a2)
                          then candidate_pairs := (a1, a2) :: !candidate_pairs)
                        args1 args2
                    | _ -> ()
                  end
                done
              done)
            by_sym;
          let budget = ref st.cfg.budget.combination_pairs_per_round in
          let do_pair (x, y) =
            if !budget > 0 && not !lemma_added then begin
              let key = (min (Term.hash x) (Term.hash y), max (Term.hash x) (Term.hash y)) in
              if not (Hashtbl.mem st.comb_pairs_done key) then begin
                match (lia_value x, lia_value y) with
                | Some vx, Some vy when Rat.equal vx vy && not (Euf.are_equal euf x y) ->
                  Hashtbl.add st.comb_pairs_done key ();
                  decr budget;
                  let eq_atom = Term.eq x y in
                  let l_eq = formula_lit st eq_atom in
                  let l1 = formula_lit st (Term.lt x y) in
                  let l2 = formula_lit st (Term.lt y x) in
                  (* This three-way clause subsumes the eq-split lemma;
                     don't pay another round for it later. *)
                  Hashtbl.replace st.eq_split_done eq_atom.Term.tid ();
                  Sat.add_clause st.sat [ l_eq; l1; l2 ];
                  justify st (fun () ->
                      let bd = Option.get st.cert in
                      let cs, k = linearize_cached x y eq_atom.Term.tid in
                      trichotomy_just bd ~l_eq ~l_lt1:l1 ~l_lt2:l2 (to_lia_coeffs cs)
                        (Rat.neg k));
                  incr dbg_r_guess;
                  st.n_theory_lemmas <- st.n_theory_lemmas + 1;
                  lemma_added := true
                | _ -> ()
              end
            end
          in
          List.iter do_pair !candidate_pairs
        end;
        let d_comb = Unix.gettimeofday () -. dbg_t3 in
        st.t_comb <- st.t_comb +. d_comb;
        if dbg_enabled then dbg_comb := !dbg_comb +. d_comb;
        if !lemma_added then R_continue else R_model_ok euf)
    end)

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let extract_model st =
  (* Best effort: report boolean atoms over constants and any 0-ary
     constants appearing in them. *)
  let out = ref [] in
  List.iter
    (fun v ->
      let atom = Hashtbl.find st.atom_of_var v in
      match atom.Term.node with
      | Term.App (f, []) -> out := (f.Term.sname, string_of_bool (Sat.value st.sat v)) :: !out
      | _ -> ())
    st.atom_vars;
  List.rev !out

let solve ?(config = default_config) assertions =
  let t0 = Unix.gettimeofday () in
  let st = create_state config in
  let finish answer model =
    let cert =
      match (answer, st.cert) with
      | Unsat, Some bd ->
        Some
          (Cert.assemble bd
             ~steps:(Sat.proof_steps st.sat)
             ~empty:(Sat.empty_step st.sat) ~justs:st.justs)
      | _ -> None
    in
    {
      answer;
      cert;
      stats =
        {
          rounds = 0;
          instances = Ematch.stats_instances st.em;
          matches_tried = Ematch.stats_matches_tried st.em;
          conflicts = Sat.stats_conflicts st.sat;
          decisions = Sat.stats_decisions st.sat;
          query_bytes = st.query_bytes;
          time_s = Unix.gettimeofday () -. t0;
          t_sat = st.t_sat;
          t_theory = st.t_theory;
          t_ematch = st.t_ematch;
        };
      model;
      profile =
        {
          Profile.quants = Ematch.profile st.em;
          phase =
            {
              Profile.ph_sat = st.t_sat;
              ph_euf = st.t_euf;
              ph_lia = st.t_lia;
              ph_comb = st.t_comb;
              ph_ematch = st.t_ematch;
            };
          inst_rounds = st.inst_rounds;
          euf_conflicts = st.n_euf_conflicts;
          lia_conflicts = st.n_lia_conflicts;
          theory_lemmas = st.n_theory_lemmas;
        };
    }
  in
  try
    st.deadline <- t0 +. config.budget.deadline_s;
    List.iter (fun a -> assert_formula st ~guard:None a) assertions;
    let rounds = ref 0 in
    let inst_rounds = ref 0 in
    let answer = ref None in
    while !answer = None do
      incr rounds;
      if !rounds > 10_000 then raise (Give_up "round limit");
      if Unix.gettimeofday () > st.deadline then raise (Give_up "timeout");
      let ts = Unix.gettimeofday () in
      let sat_result = Sat.solve ~limit_conflicts:config.budget.sat_conflict_budget st.sat in
      st.t_sat <- st.t_sat +. (Unix.gettimeofday () -. ts);
      match sat_result with
      | Sat.Unsat -> answer := Some Unsat
      | Sat.Sat -> (
        let tt = Unix.gettimeofday () in
        let fc = final_check st in
        st.t_theory <- st.t_theory +. (Unix.gettimeofday () -. tt);
        match fc with
        | R_continue -> ()
        | R_unknown reason -> raise (Give_up reason)
        | R_model_ok euf ->
          (* Instantiate quantifiers. *)
          if not st.has_quants then answer := Some Sat
          else begin
            incr inst_rounds;
            st.inst_rounds <- !inst_rounds;
            if !inst_rounds > config.budget.max_rounds then
              raise (Give_up "instantiation round limit")
            else begin
              let te = Unix.gettimeofday () in
              let insts =
                Ematch.round ~euf ~max_per_quant:config.budget.max_instances_per_quant st.em
                  ~max_instances:config.budget.max_instances_per_round
              in
              st.t_ematch <- st.t_ematch +. (Unix.gettimeofday () -. te);
              (* Only act on instances whose guard is currently true (or
                 unguarded); others are irrelevant to this model. *)
              if insts = [] then raise (Give_up "quantifiers: no more instances (candidate model)")
              else
                List.iter
                  (fun (inst : Ematch.instance) ->
                    st.query_bytes <- st.query_bytes + Term.printed_size inst.Ematch.body;
                    with_input_tag st 1 (fun () ->
                        assert_formula st ~guard:inst.Ematch.guard inst.Ematch.body))
                  insts
            end
          end)
    done;
    let a = Option.get !answer in
    let model = match a with Sat -> extract_model st | _ -> [] in
    let r = finish a model in
    { r with stats = { r.stats with rounds = !rounds } }
  with
  | Give_up reason -> finish (Unknown reason) (extract_model st)
  | Sat.Budget_exceeded -> finish (Unknown "SAT conflict budget") []

let dump_debug () =
  if dbg_enabled then
    Printf.eprintf
      "[smt] euf=%.2f lia_build=%.2f lia_check=%.2f comb=%.2f pivots=%d branches=%d checks=%d | euf_conf=%d lia_conf=%d eqsplit=%d prop=%d guess=%d\n%!"
      !dbg_euf !dbg_lia_build !dbg_lia_check !dbg_comb !Lia.dbg_pivots !Lia.dbg_branches
      !Lia.dbg_checks !dbg_r_euf_conf !dbg_r_lia_conf !dbg_r_eqsplit !dbg_r_prop !dbg_r_guess

let check_valid ?(config = default_config) ?(hyps = []) goal =
  solve ~config (hyps @ [ Term.not_ goal ])
