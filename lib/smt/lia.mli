(** Linear integer arithmetic, via the Dutertre–de Moura general simplex
    over exact rationals plus branch-and-bound for integrality.

    Used non-incrementally by the ground solver's final check.  Opaque
    integer terms (constants, uninterpreted applications, nonlinear
    products) become solver variables; linear structure is normalized to
    integer-coefficient constraints, with strict inequalities rewritten to
    non-strict ones (all variables are integers, so [a < b] is
    [a <= b - 1]).

    Conflicts carry the set of reason tags (asserting atom indices) of the
    bounds in the infeasible row — a Farkas-style core. *)

type t
(** A simplex instance: variable map, tableau, current bounds and recorded
    equations. *)

type verdict =
  | Sat  (** feasible; query values with {!model_value} *)
  | Conflict of int list  (** reason tags of an infeasible subset *)
  | Unknown  (** branch-and-bound budget exhausted *)

val create : unit -> t
(** A fresh instance with no variables and no constraints. *)

val reset_bounds : t -> unit
(** Drop all bounds/equations but keep the variable map and tableau; used
    to reuse one solver instance across many final checks. *)

val var_of_term : t -> Term.t -> int
(** The solver variable for an opaque integer term (registering it if
    new). *)

val assert_le : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** [assert_le t coeffs c ~reason] asserts [sum coeffs <= c]. *)

val assert_lt : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** Strict variant of {!assert_le}: [sum coeffs < c]. *)

val assert_ge : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** [assert_ge t coeffs c ~reason] asserts [sum coeffs >= c]. *)

val assert_gt : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** Strict variant of {!assert_ge}: [sum coeffs > c]. *)

val assert_eq : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** Asserts [sum coeffs = c] (both bounds at once). *)

(** Prepared (pre-canonicalized) constraints, for callers that re-assert
    the same atoms across many checks. *)
type prepared

val prepare :
  t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> strict:bool -> is_upper:bool -> prepared
(** [prepare t coeffs c ~strict ~is_upper]: the bound for
    [sum coeffs <= c] (upper) or [>= c] (lower). *)

val assert_prepared : t -> prepared -> reason:int -> unit
(** Asserts a previously {!prepare}d bound under the given reason tag. *)

val record_equation : t -> (Vbase.Rat.t * int) list -> Vbase.Rat.t -> reason:int -> unit
(** Register an equality for the elimination-based integrality fallback
    (callers using [prepare] for the two bounds of an equality should also
    record it here). *)

val check : ?max_branch:int -> t -> verdict
(** Decides the current constraint set.  [max_branch] bounds the
    branch-and-bound tree explored for integrality; past it the verdict is
    {!Unknown}. *)

val model_value : t -> int -> Vbase.Rat.t
(** Value of a variable in the model found by the last [Sat] check. *)

val term_of_var : t -> int -> Term.t option
(** Inverse of {!var_of_term} (slack variables have no term). *)

val find_var : t -> Term.t -> int option
(** Like {!var_of_term} but without registering new variables. *)

(** {2 Farkas certificates}

    With certification on, every conflict that admits one is captured as a
    non-negative combination of the asserted bounds: each row re-expresses
    one bound over term variables in [<=]-form, and the rows weighted by
    their multipliers sum to [0 <= c] with [c < 0].  Conflicts built from
    branch-and-bound unions or gcd elimination have no such witness and
    leave {!last_cert} as [None] (the emitter records a trusted step). *)

type centry = {
  ce_reason : int;  (** the asserting atom's reason tag *)
  ce_lambda : Vbase.Rat.t;  (** multiplier, strictly positive *)
  ce_coeffs : (int * Vbase.Bigint.t) list;  (** over term variables, sorted *)
  ce_bound : Vbase.Rat.t;  (** [ce_coeffs . x <= ce_bound] *)
}

val set_certify : t -> bool -> unit
(** Enable/disable conflict certificate capture (default off; capture adds
    a little allocation on the conflict path only). *)

val last_cert : t -> centry list option
(** Certificate of the most recent conflict, if it admits one.  Reset by
    {!reset_bounds}. *)

val atom_view :
  (Vbase.Rat.t * int) list ->
  Vbase.Rat.t ->
  strict:bool ->
  is_upper:bool ->
  (int * Vbase.Bigint.t) list * Vbase.Rat.t
(** The [<=]-form view ([coeffs . x <= bound], canonical integer
    coefficients, integer-tightened bound) of the constraint
    [sum coeffs <= c] (upper) or [>= c] (lower); pure — does not register
    slack variables.  Used to certify trichotomy lemmas. *)

(**/**)

val dbg_pivots : int ref
val dbg_branches : int ref
val dbg_checks : int ref
