(* CDCL with two watched literals, 1UIP learning, VSIDS, Luby restarts.

   Data layout: clauses are int arrays of literals; the first two slots of
   each clause are the watched literals.  Watch lists map each literal to the
   clause indices watching it. *)

exception Budget_exceeded

type result = Sat | Unsat

type t = {
  mutable assign : int array; (* per var: 0 unassigned, 1 true, -1 false *)
  mutable level : int array; (* per var: decision level *)
  mutable reason : int array; (* per var: clause index or -1 *)
  mutable activity : float array;
  mutable heap_pos : int array; (* position in heap, -1 if absent *)
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_len : int;
  mutable polarity : bool array; (* phase saving *)
  mutable nvars : int;
  clauses : int array Vbase.Vecbuf.t;
  mutable watches : int Vbase.Vecbuf.t array; (* per literal *)
  trail : int Vbase.Vecbuf.t; (* literals in assignment order *)
  trail_lim : int Vbase.Vecbuf.t; (* trail length at each decision level *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  seen : bool array ref; (* scratch for conflict analysis *)
}

let create () =
  {
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    heap_pos = Array.make 16 (-1);
    heap = Array.make 16 0;
    heap_len = 0;
    polarity = Array.make 16 false;
    nvars = 0;
    clauses = Vbase.Vecbuf.create ~dummy:[||];
    watches = Array.init 32 (fun _ -> Vbase.Vecbuf.create ~dummy:(-1));
    trail = Vbase.Vecbuf.create ~dummy:(-1);
    trail_lim = Vbase.Vecbuf.create ~dummy:(-1);
    qhead = 0;
    var_inc = 1.0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = ref (Array.make 16 false);
  }

let pos v = 2 * v
let neg v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_negate l = l lxor 1

(* Value of a literal: 1 true, -1 false, 0 unassigned. *)
let lit_value s l =
  let v = s.assign.(lit_var l) in
  if l land 1 = 1 then -v else v

let n_vars s = s.nvars

let ensure_capacity s n =
  let cap = Array.length s.assign in
  if n > cap then begin
    let newcap = max (2 * cap) n in
    let grow a fill =
      let b = Array.make newcap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assign <- grow s.assign 0;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.activity <- grow s.activity 0.0;
    s.heap_pos <- grow s.heap_pos (-1);
    s.heap <- grow s.heap 0;
    s.polarity <- grow s.polarity false;
    let w = Array.init (2 * newcap) (fun _ -> Vbase.Vecbuf.create ~dummy:(-1)) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w;
    if Array.length !(s.seen) < newcap then s.seen := Array.make newcap false
  end

(* --- activity heap ------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let new_var s =
  let v = s.nvars in
  ensure_capacity s (v + 1);
  s.nvars <- v + 1;
  s.assign.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.activity.(v) <- 0.0;
  s.heap_pos.(v) <- -1;
  s.polarity.(v) <- false;
  heap_insert s v;
  v

(* --- assignment / backtracking ------------------------------------ *)

let decision_level s = Vbase.Vecbuf.length s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l land 1 = 1 then -1 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vbase.Vecbuf.push s.trail l

let backtrack s lvl =
  if decision_level s > lvl then begin
    let keep = Vbase.Vecbuf.get s.trail_lim lvl in
    for i = Vbase.Vecbuf.length s.trail - 1 downto keep do
      let l = Vbase.Vecbuf.get s.trail i in
      let v = lit_var l in
      s.polarity.(v) <- s.assign.(v) > 0;
      s.assign.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vbase.Vecbuf.shrink s.trail keep;
    Vbase.Vecbuf.shrink s.trail_lim lvl;
    s.qhead <- keep
  end

(* --- propagation --------------------------------------------------- *)

(* Returns conflicting clause index or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Vbase.Vecbuf.length s.trail do
    let l = Vbase.Vecbuf.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let falsified = lit_negate l in
    let ws = s.watches.(falsified) in
    let n = Vbase.Vecbuf.length ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vbase.Vecbuf.get ws !i in
      incr i;
      let c = Vbase.Vecbuf.get s.clauses ci in
      (* Ensure the falsified literal is at slot 1. *)
      if c.(0) = falsified then begin
        c.(0) <- c.(1);
        c.(1) <- falsified
      end;
      if lit_value s c.(0) = 1 then begin
        (* Clause satisfied; keep watching. *)
        Vbase.Vecbuf.set ws !keep ci;
        incr keep
      end
      else begin
        (* Look for a new watch. *)
        let len = Array.length c in
        let found = ref false in
        let j = ref 2 in
        while (not !found) && !j < len do
          if lit_value s c.(!j) >= 0 then begin
            let w = c.(!j) in
            c.(!j) <- c.(1);
            c.(1) <- w;
            Vbase.Vecbuf.push s.watches.(w) ci;
            found := true
          end;
          incr j
        done;
        if !found then ()
        else begin
          (* Unit or conflict. *)
          Vbase.Vecbuf.set ws !keep ci;
          incr keep;
          if lit_value s c.(0) = -1 then begin
            (* Conflict: keep remaining watches and stop. *)
            while !i < n do
              Vbase.Vecbuf.set ws !keep (Vbase.Vecbuf.get ws !i);
              incr keep;
              incr i
            done;
            conflict := ci
          end
          else enqueue s c.(0) ci
        end
      end
    done;
    Vbase.Vecbuf.shrink ws !keep
  done;
  !conflict

(* --- clause management --------------------------------------------- *)

let attach_clause s ci =
  let c = Vbase.Vecbuf.get s.clauses ci in
  Vbase.Vecbuf.push s.watches.(c.(0)) ci;
  Vbase.Vecbuf.push s.watches.(c.(1)) ci

let add_clause s lits =
  if not s.unsat then begin
    backtrack s 0;
    (* Deduplicate; drop clauses with complementary or true literals;
       drop literals false at level 0. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (lit_negate l) lits || lit_value s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] -> s.unsat <- true
      | [ l ] ->
        enqueue s l (-1);
        if propagate s >= 0 then s.unsat <- true
      | lits ->
        let c = Array.of_list lits in
        Vbase.Vecbuf.push s.clauses c;
        attach_clause s (Vbase.Vecbuf.length s.clauses - 1)
    end
  end

(* --- conflict analysis (first UIP) --------------------------------- *)

let analyze s confl =
  let seen = !(s.seen) in
  let learnt = ref [] in
  let counter = ref 0 in
  let l = ref (-1) in
  let cl = ref confl in
  let trail_i = ref (Vbase.Vecbuf.length s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = Vbase.Vecbuf.get s.clauses !cl in
    let start = if !l = -1 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = if j = 0 && !l <> -1 then !l else c.(j) in
      let v = lit_var q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Find next literal on the trail to resolve on. *)
    let rec next () =
      let q = Vbase.Vecbuf.get s.trail !trail_i in
      decr trail_i;
      if seen.(lit_var q) then q else next ()
    in
    let p = next () in
    decr counter;
    seen.(lit_var p) <- false;
    if !counter = 0 then begin
      learnt := lit_negate p :: !learnt;
      continue := false
    end
    else begin
      cl := s.reason.(lit_var p);
      l := p
    end
  done;
  List.iter (fun q -> seen.(lit_var q) <- false) !learnt;
  (!learnt, !btlevel)

(* --- main search ---------------------------------------------------- *)

(* Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1) else luby (i - ((1 lsl (!k - 1)) - 1))

let solve ?(limit_conflicts = max_int) s =
  if s.unsat then Unsat
  else begin
    let budget_start = s.conflicts in
    let restart_count = ref 0 in
    let result = ref None in
    while !result = None do
      let restart_limit = 100 * luby (!restart_count + 1) in
      let restart_conflicts = ref 0 in
      (* One restart round. *)
      let round_done = ref false in
      while not !round_done do
        let confl = propagate s in
        if confl >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          incr restart_conflicts;
          if s.conflicts - budget_start > limit_conflicts then raise Budget_exceeded;
          if decision_level s = 0 then begin
            s.unsat <- true;
            result := Some Unsat;
            round_done := true
          end
          else begin
            let learnt, btlevel = analyze s confl in
            backtrack s btlevel;
            (match learnt with
            | [ l ] -> enqueue s l (-1)
            | l :: _ ->
              (* Put the asserting literal first and a highest-level other
                 literal second (watch invariant). *)
              let arr = Array.of_list learnt in
              let best = ref 1 in
              for j = 2 to Array.length arr - 1 do
                if s.level.(lit_var arr.(j)) > s.level.(lit_var arr.(!best)) then best := j
              done;
              let tmp = arr.(1) in
              arr.(1) <- arr.(!best);
              arr.(!best) <- tmp;
              Vbase.Vecbuf.push s.clauses arr;
              attach_clause s (Vbase.Vecbuf.length s.clauses - 1);
              enqueue s l (Vbase.Vecbuf.length s.clauses - 1)
            | [] -> s.unsat <- true; result := Some Unsat; round_done := true);
            s.var_inc <- s.var_inc /. 0.95
          end
        end
        else if !restart_conflicts >= restart_limit then begin
          backtrack s 0;
          incr restart_count;
          round_done := true
        end
        else begin
          (* Decide. *)
          let rec pick () =
            if s.heap_len = 0 then -1
            else begin
              let v = heap_pop s in
              if s.assign.(v) = 0 then v else pick ()
            end
          in
          let v = pick () in
          if v < 0 then begin
            result := Some Sat;
            round_done := true
          end
          else begin
            s.decisions <- s.decisions + 1;
            Vbase.Vecbuf.push s.trail_lim (Vbase.Vecbuf.length s.trail);
            enqueue s (if s.polarity.(v) then pos v else neg v) (-1)
          end
        end
      done
    done;
    match !result with Some r -> r | None -> assert false
  end

let value s v = s.assign.(v) > 0
let stats_conflicts s = s.conflicts
let stats_decisions s = s.decisions
let stats_propagations s = s.propagations
