(* CDCL with two watched literals, 1UIP learning, VSIDS, Luby restarts.

   Data layout: clauses are int arrays of literals; the first two slots of
   each clause are the watched literals.  Watch lists map each literal to the
   clause indices watching it. *)

exception Budget_exceeded

type result = Sat | Unsat

(* One entry of the clause-derivation log.  [ps_ante] empty marks an input
   clause (tagged with the encoder phase that produced it); otherwise the
   clause must follow from the antecedent steps by unit propagation
   (restricted RUP).  Step ids are positions in the log. *)
type proof_step = { ps_lits : int array; ps_ante : int array; ps_tag : int }

type proof = {
  steps : proof_step Vbase.Vecbuf.t;
  clause_step : int Vbase.Vecbuf.t; (* parallel to [clauses]: step of each *)
  mutable unit_step : int array; (* per var: step of its level-0 unit, or -1 *)
  mutable lvl0_memo : int list option array; (* per var: memoized support *)
  mutable tag : int; (* tag applied to subsequently recorded inputs *)
}

type t = {
  mutable assign : int array; (* per var: 0 unassigned, 1 true, -1 false *)
  mutable level : int array; (* per var: decision level *)
  mutable reason : int array; (* per var: clause index or -1 *)
  mutable activity : float array;
  mutable heap_pos : int array; (* position in heap, -1 if absent *)
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_len : int;
  mutable polarity : bool array; (* phase saving *)
  mutable nvars : int;
  clauses : int array Vbase.Vecbuf.t;
  mutable watches : int Vbase.Vecbuf.t array; (* per literal *)
  trail : int Vbase.Vecbuf.t; (* literals in assignment order *)
  trail_lim : int Vbase.Vecbuf.t; (* trail length at each decision level *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  seen : bool array ref; (* scratch for conflict analysis *)
  mutable proof : proof option; (* clause-derivation logging; off by default *)
  mutable last_input_step : int; (* input step of the last added clause, -1 *)
  mutable empty_step : int; (* step deriving the empty clause once unsat *)
}

let create () =
  {
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    heap_pos = Array.make 16 (-1);
    heap = Array.make 16 0;
    heap_len = 0;
    polarity = Array.make 16 false;
    nvars = 0;
    clauses = Vbase.Vecbuf.create ~dummy:[||];
    watches = Array.init 32 (fun _ -> Vbase.Vecbuf.create ~dummy:(-1));
    trail = Vbase.Vecbuf.create ~dummy:(-1);
    trail_lim = Vbase.Vecbuf.create ~dummy:(-1);
    qhead = 0;
    var_inc = 1.0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = ref (Array.make 16 false);
    proof = None;
    last_input_step = -1;
    empty_step = -1;
  }

let enable_proof s =
  if s.nvars > 0 || Vbase.Vecbuf.length s.clauses > 0 || s.unsat then
    invalid_arg "Sat.enable_proof: solver already in use";
  s.proof <-
    Some
      {
        steps = Vbase.Vecbuf.create ~dummy:{ ps_lits = [||]; ps_ante = [||]; ps_tag = 0 };
        clause_step = Vbase.Vecbuf.create ~dummy:(-1);
        unit_step = Array.make 16 (-1);
        lvl0_memo = Array.make 16 None;
        tag = 0;
      }

let proof_enabled s = s.proof <> None
let set_input_tag s tag = match s.proof with None -> () | Some p -> p.tag <- tag

let proof_steps s =
  match s.proof with
  | None -> [||]
  | Some p -> Array.init (Vbase.Vecbuf.length p.steps) (Vbase.Vecbuf.get p.steps)

let last_input_step s = s.last_input_step
let empty_step s = s.empty_step

let record_step s lits ante =
  match s.proof with
  | None -> -1
  | Some p ->
    Vbase.Vecbuf.push p.steps
      { ps_lits = Array.of_list lits; ps_ante = Array.of_list ante; ps_tag = p.tag };
    Vbase.Vecbuf.length p.steps - 1

let pos v = 2 * v
let neg v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_negate l = l lxor 1

(* Value of a literal: 1 true, -1 false, 0 unassigned. *)
let lit_value s l =
  let v = s.assign.(lit_var l) in
  if l land 1 = 1 then -v else v

let n_vars s = s.nvars

let ensure_capacity s n =
  let cap = Array.length s.assign in
  if n > cap then begin
    let newcap = max (2 * cap) n in
    let grow a fill =
      let b = Array.make newcap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assign <- grow s.assign 0;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.activity <- grow s.activity 0.0;
    s.heap_pos <- grow s.heap_pos (-1);
    s.heap <- grow s.heap 0;
    s.polarity <- grow s.polarity false;
    let w = Array.init (2 * newcap) (fun _ -> Vbase.Vecbuf.create ~dummy:(-1)) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w;
    if Array.length !(s.seen) < newcap then s.seen := Array.make newcap false;
    match s.proof with
    | None -> ()
    | Some p ->
      let us = Array.make newcap (-1) in
      Array.blit p.unit_step 0 us 0 (Array.length p.unit_step);
      p.unit_step <- us;
      let lm = Array.make newcap None in
      Array.blit p.lvl0_memo 0 lm 0 (Array.length p.lvl0_memo);
      p.lvl0_memo <- lm
  end

(* --- activity heap ------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let new_var s =
  let v = s.nvars in
  ensure_capacity s (v + 1);
  s.nvars <- v + 1;
  s.assign.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.activity.(v) <- 0.0;
  s.heap_pos.(v) <- -1;
  s.polarity.(v) <- false;
  heap_insert s v;
  v

(* --- assignment / backtracking ------------------------------------ *)

let decision_level s = Vbase.Vecbuf.length s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l land 1 = 1 then -1 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vbase.Vecbuf.push s.trail l

let backtrack s lvl =
  if decision_level s > lvl then begin
    let keep = Vbase.Vecbuf.get s.trail_lim lvl in
    for i = Vbase.Vecbuf.length s.trail - 1 downto keep do
      let l = Vbase.Vecbuf.get s.trail i in
      let v = lit_var l in
      s.polarity.(v) <- s.assign.(v) > 0;
      s.assign.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vbase.Vecbuf.shrink s.trail keep;
    Vbase.Vecbuf.shrink s.trail_lim lvl;
    s.qhead <- keep
  end

(* --- propagation --------------------------------------------------- *)

(* Returns conflicting clause index or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Vbase.Vecbuf.length s.trail do
    let l = Vbase.Vecbuf.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let falsified = lit_negate l in
    let ws = s.watches.(falsified) in
    let n = Vbase.Vecbuf.length ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vbase.Vecbuf.get ws !i in
      incr i;
      let c = Vbase.Vecbuf.get s.clauses ci in
      (* Ensure the falsified literal is at slot 1. *)
      if c.(0) = falsified then begin
        c.(0) <- c.(1);
        c.(1) <- falsified
      end;
      if lit_value s c.(0) = 1 then begin
        (* Clause satisfied; keep watching. *)
        Vbase.Vecbuf.set ws !keep ci;
        incr keep
      end
      else begin
        (* Look for a new watch. *)
        let len = Array.length c in
        let found = ref false in
        let j = ref 2 in
        while (not !found) && !j < len do
          if lit_value s c.(!j) >= 0 then begin
            let w = c.(!j) in
            c.(!j) <- c.(1);
            c.(1) <- w;
            Vbase.Vecbuf.push s.watches.(w) ci;
            found := true
          end;
          incr j
        done;
        if !found then ()
        else begin
          (* Unit or conflict. *)
          Vbase.Vecbuf.set ws !keep ci;
          incr keep;
          if lit_value s c.(0) = -1 then begin
            (* Conflict: keep remaining watches and stop. *)
            while !i < n do
              Vbase.Vecbuf.set ws !keep (Vbase.Vecbuf.get ws !i);
              incr keep;
              incr i
            done;
            conflict := ci
          end
          else enqueue s c.(0) ci
        end
      end
    done;
    Vbase.Vecbuf.shrink ws !keep
  done;
  !conflict

(* --- clause management --------------------------------------------- *)

let attach_clause s ci =
  let c = Vbase.Vecbuf.get s.clauses ci in
  Vbase.Vecbuf.push s.watches.(c.(0)) ci;
  Vbase.Vecbuf.push s.watches.(c.(1)) ci

(* Steps supporting the level-0 assignment of [v]: the unit that enqueued
   it, or its reason clause's step plus (recursively) the supports of that
   clause's other literals.  Together these let the replay kernel re-derive
   by unit propagation every literal the solver eliminated at level 0.
   Memoized — level-0 assignments and their reasons are permanent. *)
let rec lvl0_chain s p v =
  match p.lvl0_memo.(v) with
  | Some c -> c
  | None ->
    let c =
      let r = s.reason.(v) in
      if r >= 0 then begin
        let cl = Vbase.Vecbuf.get s.clauses r in
        let acc = ref [ Vbase.Vecbuf.get p.clause_step r ] in
        Array.iter
          (fun q ->
            if lit_var q <> v then acc := List.rev_append (lvl0_chain s p (lit_var q)) !acc)
          cl;
        !acc
      end
      else if p.unit_step.(v) >= 0 then [ p.unit_step.(v) ]
      else []
    in
    p.lvl0_memo.(v) <- Some c;
    c

(* The empty clause from a level-0 conflict on clause [ci]: every literal
   of [ci] is false at level 0, so [ci]'s step plus the supports of its
   variables derive the contradiction. *)
let record_lvl0_conflict s p ci =
  let cl = Vbase.Vecbuf.get s.clauses ci in
  let chain =
    Array.fold_left (fun acc q -> List.rev_append (lvl0_chain s p (lit_var q)) acc) [] cl
  in
  s.empty_step <-
    record_step s [] (Vbase.Vecbuf.get p.clause_step ci :: List.sort_uniq compare chain)

let add_clause s lits =
  if not s.unsat then begin
    backtrack s 0;
    (* Deduplicate; drop clauses with complementary or true literals;
       drop literals false at level 0. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (lit_negate l) lits || lit_value s l = 1) lits
    in
    s.last_input_step <- -1;
    if not tautology then begin
      let kept = List.filter (fun l -> lit_value s l <> -1) lits in
      let step =
        match s.proof with
        | None -> -1
        | Some p ->
          let input = record_step s lits [] in
          s.last_input_step <- input;
          if List.length kept = List.length lits then input
          else begin
            (* Literals false at level 0 were dropped: derive the stored
               clause from the input plus the dropped literals' supports. *)
            let dropped = List.filter (fun l -> lit_value s l = -1) lits in
            let chain = List.concat_map (fun l -> lvl0_chain s p (lit_var l)) dropped in
            record_step s kept (input :: List.sort_uniq compare chain)
          end
      in
      match kept with
      | [] ->
        s.empty_step <- step;
        s.unsat <- true
      | [ l ] ->
        (match s.proof with Some p -> p.unit_step.(lit_var l) <- step | None -> ());
        enqueue s l (-1);
        let confl = propagate s in
        if confl >= 0 then begin
          (match s.proof with Some p -> record_lvl0_conflict s p confl | None -> ());
          s.unsat <- true
        end
      | kept ->
        let c = Array.of_list kept in
        Vbase.Vecbuf.push s.clauses c;
        (match s.proof with Some p -> Vbase.Vecbuf.push p.clause_step step | None -> ());
        attach_clause s (Vbase.Vecbuf.length s.clauses - 1)
    end
  end

(* --- conflict analysis (first UIP) --------------------------------- *)

let analyze s confl =
  let seen = !(s.seen) in
  let learnt = ref [] in
  let counter = ref 0 in
  let l = ref (-1) in
  let cl = ref confl in
  let trail_i = ref (Vbase.Vecbuf.length s.trail - 1) in
  let btlevel = ref 0 in
  (* With proof logging on, collect the resolved clauses (the learned
     clause's RUP antecedents) and the level-0 variables skipped by the
     1UIP loop (their supports complete the antecedent set). *)
  let antes = ref (if s.proof = None then [] else [ confl ]) in
  let lvl0 = ref [] in
  let continue = ref true in
  while !continue do
    let c = Vbase.Vecbuf.get s.clauses !cl in
    let start = if !l = -1 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = if j = 0 && !l <> -1 then !l else c.(j) in
      let v = lit_var q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
      else if s.proof <> None && (not seen.(v)) && s.level.(v) = 0 then lvl0 := v :: !lvl0
    done;
    (* Find next literal on the trail to resolve on. *)
    let rec next () =
      let q = Vbase.Vecbuf.get s.trail !trail_i in
      decr trail_i;
      if seen.(lit_var q) then q else next ()
    in
    let p = next () in
    decr counter;
    seen.(lit_var p) <- false;
    if !counter = 0 then begin
      learnt := lit_negate p :: !learnt;
      continue := false
    end
    else begin
      cl := s.reason.(lit_var p);
      if s.proof <> None then antes := !cl :: !antes;
      l := p
    end
  done;
  List.iter (fun q -> seen.(lit_var q) <- false) !learnt;
  (!learnt, !btlevel, !antes, !lvl0)

(* --- main search ---------------------------------------------------- *)

(* Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1) else luby (i - ((1 lsl (!k - 1)) - 1))

let solve ?(limit_conflicts = max_int) s =
  if s.unsat then Unsat
  else begin
    let budget_start = s.conflicts in
    let restart_count = ref 0 in
    let result = ref None in
    while !result = None do
      let restart_limit = 100 * luby (!restart_count + 1) in
      let restart_conflicts = ref 0 in
      (* One restart round. *)
      let round_done = ref false in
      while not !round_done do
        let confl = propagate s in
        if confl >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          incr restart_conflicts;
          if s.conflicts - budget_start > limit_conflicts then raise Budget_exceeded;
          if decision_level s = 0 then begin
            (match s.proof with Some p -> record_lvl0_conflict s p confl | None -> ());
            s.unsat <- true;
            result := Some Unsat;
            round_done := true
          end
          else begin
            let learnt, btlevel, antes, lvl0 = analyze s confl in
            let step =
              match s.proof with
              | None -> -1
              | Some p ->
                let ante = List.rev_map (fun ci -> Vbase.Vecbuf.get p.clause_step ci) antes in
                let chain =
                  List.concat_map (fun v -> lvl0_chain s p v) (List.sort_uniq compare lvl0)
                in
                record_step s (List.sort compare learnt) (ante @ List.sort_uniq compare chain)
            in
            backtrack s btlevel;
            (match learnt with
            | [ l ] ->
              (match s.proof with Some p -> p.unit_step.(lit_var l) <- step | None -> ());
              enqueue s l (-1)
            | l :: _ ->
              (* Put the asserting literal first and a highest-level other
                 literal second (watch invariant). *)
              let arr = Array.of_list learnt in
              let best = ref 1 in
              for j = 2 to Array.length arr - 1 do
                if s.level.(lit_var arr.(j)) > s.level.(lit_var arr.(!best)) then best := j
              done;
              let tmp = arr.(1) in
              arr.(1) <- arr.(!best);
              arr.(!best) <- tmp;
              Vbase.Vecbuf.push s.clauses arr;
              (match s.proof with
              | Some p -> Vbase.Vecbuf.push p.clause_step step
              | None -> ());
              attach_clause s (Vbase.Vecbuf.length s.clauses - 1);
              enqueue s l (Vbase.Vecbuf.length s.clauses - 1)
            | [] ->
              s.empty_step <- step;
              s.unsat <- true;
              result := Some Unsat;
              round_done := true);
            s.var_inc <- s.var_inc /. 0.95
          end
        end
        else if !restart_conflicts >= restart_limit then begin
          backtrack s 0;
          incr restart_count;
          round_done := true
        end
        else begin
          (* Decide. *)
          let rec pick () =
            if s.heap_len = 0 then -1
            else begin
              let v = heap_pop s in
              if s.assign.(v) = 0 then v else pick ()
            end
          in
          let v = pick () in
          if v < 0 then begin
            result := Some Sat;
            round_done := true
          end
          else begin
            s.decisions <- s.decisions + 1;
            Vbase.Vecbuf.push s.trail_lim (Vbase.Vecbuf.length s.trail);
            enqueue s (if s.polarity.(v) then pos v else neg v) (-1)
          end
        end
      done
    done;
    match !result with Some r -> r | None -> assert false
  end

let value s v = s.assign.(v) > 0
let stats_conflicts s = s.conflicts
let stats_decisions s = s.decisions
let stats_propagations s = s.propagations
