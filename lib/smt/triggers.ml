type policy = Conservative | Liberal

(* Bound variables of the quantifier occurring in a term. *)
let qvars_in qvars t =
  let names = List.map fst qvars in
  List.filter (fun (x, _) -> List.mem x names) (Term.free_bvars t)
  |> List.map fst

let contains_quant t =
  Term.fold_subterms
    (fun acc s -> acc || match s.Term.node with Term.Forall _ | Term.Exists _ -> true | _ -> false)
    false t

(* Candidate patterns: uninterpreted applications with arguments, mentioning
   at least one bound variable, not containing a nested quantifier, and not
   being a bare bound variable. *)
let candidates (q : Term.quant) =
  Term.fold_subterms
    (fun acc s ->
      match s.Term.node with
      | Term.App (_, _ :: _) when qvars_in q.Term.qvars s <> [] && not (contains_quant s) ->
        s :: acc
      | _ -> acc)
    [] q.Term.body

(* Greedily extend [group] with candidates until it covers all qvars;
   returns None if full coverage is impossible. *)
let complete_cover qvars group cands =
  let covered g = List.sort_uniq compare (List.concat_map (qvars_in qvars) g) in
  let all = List.sort_uniq compare (List.map fst qvars) in
  let rec go group =
    let cov = covered group in
    if cov = all then Some group
    else begin
      let missing = List.filter (fun v -> not (List.mem v cov)) all in
      match
        List.find_opt
          (fun c -> List.exists (fun v -> List.mem v (qvars_in qvars c)) missing)
          cands
      with
      | Some c -> go (group @ [ c ])
      | None -> None
    end
  in
  go group

let select policy (q : Term.quant) =
  if q.Term.triggers <> [] then q.Term.triggers
  else begin
    let cands = candidates q in
    (* Prefer smaller patterns. *)
    let cands = List.sort (fun a b -> compare (Term.tree_size a) (Term.tree_size b)) cands in
    (* Drop candidates that are proper subterms of smaller... keep simple. *)
    match policy with
    | Conservative -> (
      (* All *minimal* single covering patterns, one group each (a pattern
         is dropped when a strict subterm of it also covers).  Several
         small groups keep instantiation selective while making sure the
         quantifier fires whichever of its atoms appears in the goal —
         matching how production solvers pick conservative triggers. *)
      let all = List.sort_uniq compare (List.map fst q.Term.qvars) in
      let covering =
        List.filter
          (fun c -> List.sort_uniq compare (qvars_in q.Term.qvars c) = all)
          cands
      in
      let minimal =
        List.filter
          (fun c ->
            not
              (List.exists
                 (fun c' ->
                   (not (Term.equal c c'))
                   && Term.fold_subterms (fun acc s -> acc || Term.equal s c') false c)
                 covering))
          covering
      in
      match minimal with
      | _ :: _ -> List.map (fun c -> [ c ]) minimal
      | [] -> ( match complete_cover q.Term.qvars [] cands with Some g -> [ g ] | None -> []))
    | Liberal ->
      (* Broad, Dafny-style selection: every covering pattern becomes a
         trigger group — including large nested ones, which keep matching
         against terms produced by earlier instantiations (the
         instantiation-chain cost §3.1 describes).  Multi-patterns are a
         last resort when no single pattern covers. *)
      let all = List.sort_uniq compare (List.map fst q.Term.qvars) in
      let covering =
        List.filter
          (fun c -> List.sort_uniq compare (qvars_in q.Term.qvars c) = all)
          cands
      in
      (match covering with
      | _ :: _ -> List.map (fun c -> [ c ]) covering
      | [] -> (
        match
          List.filter_map (fun c -> complete_cover q.Term.qvars [ c ] cands) cands
        with
        | [] -> []
        | g :: _ -> [ g ]))
  end
