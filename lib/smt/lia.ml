module Rat = Vbase.Rat
module Bigint = Vbase.Bigint

type bound = { value : Rat.t; reason : int }

type verdict = Sat | Conflict of int list | Unknown

(* One row of a Farkas infeasibility certificate: the constraint asserted
   under [ce_reason], expanded over term variables and normalized to
   <=-form ([ce_coeffs . x <= ce_bound]), with its non-negative multiplier.
   A valid certificate's rows sum to the contradiction [0 <= c], [c < 0]. *)
type centry = {
  ce_reason : int;
  ce_lambda : Rat.t;
  ce_coeffs : (int * Bigint.t) list;
  ce_bound : Rat.t;
}

let dbg_pivots = ref 0
let dbg_branches = ref 0
let dbg_checks = ref 0

type t = {
  mutable nvars : int;
  mutable lower : bound option array;
  mutable upper : bound option array;
  mutable beta : Rat.t array;
  mutable is_basic : bool array;
  rows : (int, (int, Rat.t) Hashtbl.t) Hashtbl.t; (* basic var -> row over nonbasics *)
  cols : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* nonbasic var -> rows that mention it *)
  var_by_term : (int, int) Hashtbl.t; (* term tid -> var *)
  terms : Term.t option Vbase.Vecbuf.t; (* var -> originating term *)
  slack_by_key : ((int * Bigint.t) list, int) Hashtbl.t; (* canonical lin form -> slack var *)
  slack_form : (int, (int * Bigint.t) list) Hashtbl.t; (* inverse of slack_by_key *)
  mutable conflict : int list option; (* detected during assertion *)
  mutable equations : ((int * Bigint.t) list * Bigint.t * int) list;
      (* integer equalities (canonical coeffs, rhs, reason) for the
         elimination-based integrality check *)
  mutable certify : bool; (* capture Farkas certificates at conflicts *)
  mutable last_cert : centry list option;
      (* certificate of the last conflict; [None] when a conflict has no
         Farkas witness (branch-and-bound unions, gcd elimination) *)
}

let create () =
  {
    nvars = 0;
    lower = Array.make 32 None;
    upper = Array.make 32 None;
    beta = Array.make 32 Rat.zero;
    is_basic = Array.make 32 false;
    rows = Hashtbl.create 32;
    cols = Hashtbl.create 32;
    var_by_term = Hashtbl.create 32;
    terms = Vbase.Vecbuf.create ~dummy:None;
    slack_by_key = Hashtbl.create 32;
    slack_form = Hashtbl.create 32;
    conflict = None;
    equations = [];
    certify = false;
    last_cert = None;
  }

let set_certify t on = t.certify <- on
let last_cert t = t.last_cert

(* The defining linear form of a variable over term variables: slack
   variables expand to their canonical key, term variables to themselves.
   Bounds re-expressed through this expansion are exact consequences of
   the original assertions, which is what makes the captured certificates
   checkable without the tableau. *)
let expand_form t v =
  match Hashtbl.find_opt t.slack_form v with
  | Some f -> f
  | None -> [ (v, Bigint.one) ]

let centry_of_bound t ~reason ~lambda ~v ~is_upper ~bound =
  let f = expand_form t v in
  if is_upper then { ce_reason = reason; ce_lambda = lambda; ce_coeffs = f; ce_bound = bound }
  else
    {
      ce_reason = reason;
      ce_lambda = lambda;
      ce_coeffs = List.map (fun (x, c) -> (x, Bigint.neg c)) f;
      ce_bound = Rat.neg bound;
    }

(* Record a certificate for the conflict being reported; degrade to [None]
   (an uncertified conflict) if any row involves an internal reason such as
   a branch-and-bound marker. *)
let set_cert t entries =
  if t.certify then
    t.last_cert <-
      (if List.for_all (fun e -> e.ce_reason >= 0) entries then Some entries else None)

let clear_cert t = if t.certify then t.last_cert <- None

let ensure_capacity t n =
  let cap = Array.length t.beta in
  if n > cap then begin
    let newcap = max (2 * cap) n in
    let grow a fill =
      let b = Array.make newcap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.lower <- grow t.lower None;
    t.upper <- grow t.upper None;
    t.beta <- grow t.beta Rat.zero;
    t.is_basic <- grow t.is_basic false
  end

let new_var t term =
  let v = t.nvars in
  t.nvars <- v + 1;
  ensure_capacity t t.nvars;
  t.lower.(v) <- None;
  t.upper.(v) <- None;
  t.beta.(v) <- Rat.zero;
  t.is_basic.(v) <- false;
  Vbase.Vecbuf.push t.terms term;
  v

let var_of_term t tm =
  match Hashtbl.find_opt t.var_by_term (Term.hash tm) with
  | Some v -> v
  | None ->
    let v = new_var t (Some tm) in
    Hashtbl.add t.var_by_term (Term.hash tm) v;
    v

let term_of_var t v = Vbase.Vecbuf.get t.terms v

let find_var t tm = Hashtbl.find_opt t.var_by_term (Term.hash tm)

(* Reset for a fresh round of bound assertions: keeps variables, the
   tableau and the slack-form cache (the expensive parts), drops bounds,
   recorded equations and any assertion-time conflict. *)
let reset_bounds t =
  Array.fill t.lower 0 t.nvars None;
  Array.fill t.upper 0 t.nvars None;
  t.conflict <- None;
  t.equations <- [];
  t.last_cert <- None

(* --- tableau ---------------------------------------------------------- *)

let col_of t v =
  match Hashtbl.find_opt t.cols v with
  | Some c -> c
  | None ->
    let c = Hashtbl.create 8 in
    Hashtbl.add t.cols v c;
    c

(* Install [row] (over nonbasic vars) as the definition of basic var [b]. *)
let install_row t b row =
  Hashtbl.replace t.rows b row;
  t.is_basic.(b) <- true;
  Hashtbl.iter (fun v _ -> Hashtbl.replace (col_of t v) b ()) row

(* beta of a linear form over current beta. *)
let eval_row t row =
  Hashtbl.fold (fun v c acc -> Rat.add acc (Rat.mul c t.beta.(v))) row Rat.zero

(* Pivot basic variable [bi] with nonbasic [nj]. *)
let pivot t bi nj =
  let row = Hashtbl.find t.rows bi in
  let a_ij = Hashtbl.find row nj in
  (* xj = (xi - sum_{k<>j} a_ik xk) / a_ij *)
  let new_row = Hashtbl.create (Hashtbl.length row) in
  Hashtbl.iter
    (fun v c -> if v <> nj then Hashtbl.replace new_row v (Rat.neg (Rat.div c a_ij)))
    row;
  Hashtbl.replace new_row bi (Rat.div Rat.one a_ij);
  (* Remove the old row. *)
  Hashtbl.remove t.rows bi;
  t.is_basic.(bi) <- false;
  Hashtbl.iter (fun v _ -> match Hashtbl.find_opt t.cols v with
      | Some c -> Hashtbl.remove c bi
      | None -> ()) row;
  (* Substitute xj := new_row into every other row that mentions xj. *)
  let mentioning = match Hashtbl.find_opt t.cols nj with Some c -> Hashtbl.fold (fun b () acc -> b :: acc) c [] | None -> [] in
  List.iter
    (fun bk ->
      match Hashtbl.find_opt t.rows bk with
      | None -> ()
      | Some rk ->
        (match Hashtbl.find_opt rk nj with
        | None -> ()
        | Some a_kj ->
          Hashtbl.remove rk nj;
          (match Hashtbl.find_opt t.cols nj with Some c -> Hashtbl.remove c bk | None -> ());
          Hashtbl.iter
            (fun v c ->
              let cur = match Hashtbl.find_opt rk v with Some x -> x | None -> Rat.zero in
              let nc = Rat.add cur (Rat.mul a_kj c) in
              if Rat.is_zero nc then begin
                Hashtbl.remove rk v;
                match Hashtbl.find_opt t.cols v with Some col -> Hashtbl.remove col bk | None -> ()
              end
              else begin
                Hashtbl.replace rk v nc;
                Hashtbl.replace (col_of t v) bk ()
              end)
            new_row))
    mentioning;
  install_row t nj new_row

(* Set beta of nonbasic var [x] to [v], updating dependent basic vars. *)
let update_nonbasic t x v =
  let delta = Rat.sub v t.beta.(x) in
  if not (Rat.is_zero delta) then begin
    t.beta.(x) <- v;
    match Hashtbl.find_opt t.cols x with
    | None -> ()
    | Some col ->
      Hashtbl.iter
        (fun b () ->
          match Hashtbl.find_opt t.rows b with
          | Some row -> (
            match Hashtbl.find_opt row x with
            | Some c -> t.beta.(b) <- Rat.add t.beta.(b) (Rat.mul c delta)
            | None -> ())
          | None -> ())
        col
  end

(* pivotAndUpdate from Dutertre-de Moura. *)
let pivot_and_update t bi nj v =
  let row = Hashtbl.find t.rows bi in
  let a_ij = Hashtbl.find row nj in
  let theta = Rat.div (Rat.sub v t.beta.(bi)) a_ij in
  t.beta.(bi) <- v;
  t.beta.(nj) <- Rat.add t.beta.(nj) theta;
  (match Hashtbl.find_opt t.cols nj with
  | None -> ()
  | Some col ->
    Hashtbl.iter
      (fun bk () ->
        if bk <> bi then
          match Hashtbl.find_opt t.rows bk with
          | Some rk -> (
            match Hashtbl.find_opt rk nj with
            | Some a_kj -> t.beta.(bk) <- Rat.add t.beta.(bk) (Rat.mul a_kj theta)
            | None -> ())
          | None -> ())
      col);
  pivot t bi nj

(* --- bounds ----------------------------------------------------------- *)

let assert_lower t x value reason =
  if t.conflict = None then begin
    match t.upper.(x) with
    | Some ub when Rat.compare value ub.value > 0 ->
      set_cert t
        [
          centry_of_bound t ~reason ~lambda:Rat.one ~v:x ~is_upper:false ~bound:value;
          centry_of_bound t ~reason:ub.reason ~lambda:Rat.one ~v:x ~is_upper:true
            ~bound:ub.value;
        ];
      t.conflict <- Some [ reason; ub.reason ]
    | _ -> (
      match t.lower.(x) with
      | Some lb when Rat.compare lb.value value >= 0 -> ()
      | _ ->
        t.lower.(x) <- Some { value; reason };
        if (not t.is_basic.(x)) && Rat.compare t.beta.(x) value < 0 then update_nonbasic t x value)
  end

let assert_upper t x value reason =
  if t.conflict = None then begin
    match t.lower.(x) with
    | Some lb when Rat.compare value lb.value < 0 ->
      set_cert t
        [
          centry_of_bound t ~reason ~lambda:Rat.one ~v:x ~is_upper:true ~bound:value;
          centry_of_bound t ~reason:lb.reason ~lambda:Rat.one ~v:x ~is_upper:false
            ~bound:lb.value;
        ];
      t.conflict <- Some [ reason; lb.reason ]
    | _ -> (
      match t.upper.(x) with
      | Some ub when Rat.compare ub.value value <= 0 -> ()
      | _ ->
        t.upper.(x) <- Some { value; reason };
        if (not t.is_basic.(x)) && Rat.compare t.beta.(x) value > 0 then update_nonbasic t x value)
  end

(* --- linear forms ------------------------------------------------------ *)

(* Combine duplicate vars, drop zeros; returns sorted (var, coeff) list. *)
let normalize_coeffs coeffs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
      let cur = match Hashtbl.find_opt tbl v with Some x -> x | None -> Rat.zero in
      Hashtbl.replace tbl v (Rat.add cur c))
    coeffs;
  Hashtbl.fold (fun v c acc -> if Rat.is_zero c then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Scale to integer coefficients with gcd 1 and positive leading coeff.
   Returns (scaled list, scale factor as Rat, flipped). *)
let canonicalize coeffs =
  match coeffs with
  | [] -> ([], Rat.one, false)
  | (_, c0) :: _ ->
    let all_integral = List.for_all (fun (_, c) -> Rat.is_integer c) coeffs in
    let lcm_den =
      if all_integral then Bigint.one
      else
        List.fold_left
          (fun acc (_, c) ->
            let d = (c : Rat.t).Rat.den in
            Bigint.mul acc (fst (Bigint.div_rem d (Bigint.gcd acc d))))
          Bigint.one coeffs
    in
    let ints =
      if all_integral then List.map (fun (v, c) -> (v, (c : Rat.t).Rat.num)) coeffs
      else
        List.map (fun (v, c) -> (v, Rat.floor (Rat.mul c (Rat.of_bigint lcm_den)))) coeffs
    in
    let g = List.fold_left (fun acc (_, c) -> Bigint.gcd acc c) Bigint.zero ints in
    let g = if Bigint.is_zero g then Bigint.one else g in
    let ints = List.map (fun (v, c) -> (v, fst (Bigint.div_rem c g))) ints in
    let flipped = Rat.sign c0 < 0 in
    let ints = if flipped then List.map (fun (v, c) -> (v, Bigint.neg c)) ints else ints in
    let scale = Rat.div (Rat.of_bigint lcm_den) (Rat.of_bigint g) in
    let scale = if flipped then Rat.neg scale else scale in
    (ints, scale, flipped)

(* Get or create the variable representing the canonical integer form. *)
let form_var t ints =
  match ints with
  | [ (v, c) ] when Bigint.equal c Bigint.one -> v
  | _ ->
    let key = ints in
    (match Hashtbl.find_opt t.slack_by_key key with
    | Some s -> s
    | None ->
      let s = new_var t None in
      Hashtbl.add t.slack_by_key key s;
      Hashtbl.add t.slack_form s key;
      let row = Hashtbl.create 8 in
      List.iter
        (fun (v, c) ->
          (* If v is itself basic, substitute its row. *)
          let c = Rat.of_bigint c in
          if t.is_basic.(v) then
            Hashtbl.iter
              (fun u cu ->
                let cur = match Hashtbl.find_opt row u with Some x -> x | None -> Rat.zero in
                let nc = Rat.add cur (Rat.mul c cu) in
                if Rat.is_zero nc then Hashtbl.remove row u else Hashtbl.replace row u nc)
              (Hashtbl.find t.rows v)
          else begin
            let cur = match Hashtbl.find_opt row v with Some x -> x | None -> Rat.zero in
            let nc = Rat.add cur c in
            if Rat.is_zero nc then Hashtbl.remove row v else Hashtbl.replace row v nc
          end)
        ints;
      install_row t s row;
      t.beta.(s) <- eval_row t row;
      s)

(* A constraint reduced to a single bound on a (possibly slack) variable;
   computing this involves normalization, gcd scaling and slack-variable
   lookup, so callers that re-assert the same atoms every round cache it.
   Constant constraints carry their <=-form bound ([0 <= b]) so a violation
   still yields a one-row Farkas certificate. *)
type prepared =
  | P_const of Rat.t (* the constant constraint [0 <= b]; violated iff b < 0 *)
  | P_up of int * Rat.t
  | P_lo of int * Rat.t

(* The <=-form bound of a constant constraint [0 <= c] (upper) or
   [0 >= c] (lower), tightened for integrality under strictness. *)
let tighten_const ~strict ~is_upper c =
  let b = if is_upper then c else Rat.neg c in
  if strict && Rat.is_integer c then Rat.sub b Rat.one else b

let prepare t coeffs c ~strict ~is_upper : prepared =
  let coeffs = normalize_coeffs coeffs in
  match coeffs with
  | [] -> P_const (tighten_const ~strict ~is_upper c)
  | _ ->
    let ints, scale, flipped = canonicalize coeffs in
    let s = form_var t ints in
    let bound_val = Rat.mul c scale in
    let is_upper = if flipped then not is_upper else is_upper in
    if is_upper then begin
      let b =
        if strict && Rat.is_integer bound_val then Rat.sub bound_val Rat.one
        else Rat.of_bigint (Rat.floor bound_val)
      in
      P_up (s, b)
    end
    else begin
      let b =
        if strict && Rat.is_integer bound_val then Rat.add bound_val Rat.one
        else Rat.of_bigint (Rat.ceil bound_val)
      in
      P_lo (s, b)
    end

(* The <=-form view of a constraint, for certificate emission: the
   canonical integer coefficient vector over term variables and the
   integer-tightened bound, exactly as {!prepare} would bound it, but
   without touching the tableau.  [(coeffs, b)] means [coeffs . x <= b]. *)
let atom_view coeffs c ~strict ~is_upper =
  let coeffs = normalize_coeffs coeffs in
  match coeffs with
  | [] -> ([], tighten_const ~strict ~is_upper c)
  | _ ->
    let ints, scale, flipped = canonicalize coeffs in
    let bound_val = Rat.mul c scale in
    let is_upper = if flipped then not is_upper else is_upper in
    if is_upper then
      let b =
        if strict && Rat.is_integer bound_val then Rat.sub bound_val Rat.one
        else Rat.of_bigint (Rat.floor bound_val)
      in
      (ints, b)
    else
      let b =
        if strict && Rat.is_integer bound_val then Rat.add bound_val Rat.one
        else Rat.of_bigint (Rat.ceil bound_val)
      in
      (List.map (fun (v, x) -> (v, Bigint.neg x)) ints, Rat.neg b)

let assert_prepared t (p : prepared) ~reason =
  if t.conflict = None then begin
    match p with
    | P_const b ->
      if Rat.sign b < 0 then begin
        set_cert t [ { ce_reason = reason; ce_lambda = Rat.one; ce_coeffs = []; ce_bound = b } ];
        t.conflict <- Some [ reason ]
      end
    | P_up (s, b) -> assert_upper t s b reason
    | P_lo (s, b) -> assert_lower t s b reason
  end

(* Assert (sum coeffs) <= c  (strict converts to <= c-1 after scaling). *)
let assert_general t coeffs c ~strict ~is_upper ~reason =
  if t.conflict = None then begin
    let coeffs = normalize_coeffs coeffs in
    match coeffs with
    | [] ->
      (* Constant constraint. *)
      let b = tighten_const ~strict ~is_upper c in
      if Rat.sign b < 0 then begin
        set_cert t [ { ce_reason = reason; ce_lambda = Rat.one; ce_coeffs = []; ce_bound = b } ];
        t.conflict <- Some [ reason ]
      end
    | _ ->
      let ints, scale, flipped = canonicalize coeffs in
      let s = form_var t ints in
      (* Original: form/scale <= c  i.e. form <= c*scale (if scale > 0). *)
      let bound_val = Rat.mul c scale in
      let is_upper = if flipped then not is_upper else is_upper in
      if is_upper then begin
        (* form <= bound_val; integrality: form <= floor(bound_val), strict
           subtracts one when the bound is integral. *)
        let b =
          if strict && Rat.is_integer bound_val then Rat.sub bound_val Rat.one
          else Rat.of_bigint (Rat.floor bound_val)
        in
        assert_upper t s b reason
      end
      else begin
        let b =
          if strict && Rat.is_integer bound_val then Rat.add bound_val Rat.one
          else Rat.of_bigint (Rat.ceil bound_val)
        in
        assert_lower t s b reason
      end
  end

let assert_le t coeffs c ~reason = assert_general t coeffs c ~strict:false ~is_upper:true ~reason
let assert_lt t coeffs c ~reason = assert_general t coeffs c ~strict:true ~is_upper:true ~reason
let assert_ge t coeffs c ~reason = assert_general t coeffs c ~strict:false ~is_upper:false ~reason
let assert_gt t coeffs c ~reason = assert_general t coeffs c ~strict:true ~is_upper:false ~reason

let record_equation t coeffs c ~reason =
  (* For the elimination-based integrality check (catches parity/gcd
     conflicts that branch-and-bound cannot terminate on). *)
  match normalize_coeffs coeffs with
  | [] -> ()
  | nc ->
    let ints, scale, _flipped = canonicalize nc in
    let rhs = Rat.mul c scale in
    if Rat.is_integer rhs then
      t.equations <- (ints, (rhs : Rat.t).Rat.num, reason) :: t.equations

let assert_eq t coeffs c ~reason =
  assert_le t coeffs c ~reason;
  assert_ge t coeffs c ~reason;
  if t.conflict = None then record_equation t coeffs c ~reason

(* Omega-style integer equality elimination: repeatedly solve equations
   with a unit coefficient and substitute; detect gcd conflicts.  Sound
   (returns conflicts only when a genuine integer infeasibility exists);
   incomplete without the full Omega mod-trick, which is fine because it
   backs up branch-and-bound rather than replacing it. *)
let eliminate_equations t =
  let norm coeffs =
    (* Combine duplicates, drop zeros, sort by var. *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (v, c) ->
        let cur = match Hashtbl.find_opt tbl v with Some x -> x | None -> Bigint.zero in
        Hashtbl.replace tbl v (Bigint.add cur c))
      coeffs;
    Hashtbl.fold (fun v c acc -> if Bigint.is_zero c then acc else (v, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let conflict = ref None in
  let eqs = ref (List.map (fun (cs, b, r) -> (norm cs, b, [ r ])) t.equations) in
  let progress = ref true in
  while !conflict = None && !progress do
    progress := false;
    (* gcd / triviality pass *)
    eqs :=
      List.filter_map
        (fun (cs, b, rs) ->
          match cs with
          | [] ->
            if not (Bigint.is_zero b) && !conflict = None then conflict := Some rs;
            None
          | _ ->
            let g = List.fold_left (fun acc (_, c) -> Bigint.gcd acc c) Bigint.zero cs in
            let q, r = Bigint.div_rem b g in
            if not (Bigint.is_zero r) then begin
              if !conflict = None then conflict := Some rs;
              None
            end
            else Some (List.map (fun (v, c) -> (v, fst (Bigint.div_rem c g))) cs, q, rs))
        !eqs;
    if !conflict = None then begin
      (* Find an equation with a +-1 coefficient and substitute it away. *)
      let rec split acc = function
        | [] -> None
        | ((cs, _, _) as eq) :: rest ->
          if List.exists (fun (_, c) -> Bigint.equal (Bigint.abs c) Bigint.one) cs then
            Some (eq, List.rev_append acc rest)
          else split (eq :: acc) rest
      in
      match split [] !eqs with
      | None -> ()
      | Some ((cs, b, rs), rest) ->
        progress := true;
        let x, cx = List.find (fun (_, c) -> Bigint.equal (Bigint.abs c) Bigint.one) cs in
        (* cx * x = b - sum(others)  =>  x = s * (b - others), s = cx. *)
        let others = List.filter (fun (v, _) -> v <> x) cs in
        let sub_into (cs2, b2, rs2) =
          match List.assoc_opt x cs2 with
          | None -> (cs2, b2, rs2)
          | Some c2 ->
            (* Replace c2*x by c2 * s * (b - others). *)
            let s = cx in
            let k = Bigint.mul c2 s in
            let cs2' = List.filter (fun (v, _) -> v <> x) cs2 in
            let cs2' = cs2' @ List.map (fun (v, c) -> (v, Bigint.neg (Bigint.mul k c))) others in
            (norm cs2', Bigint.sub b2 (Bigint.mul k b), List.sort_uniq compare (rs @ rs2))
        in
        eqs := List.map sub_into rest
    end
  done;
  !conflict

(* --- simplex core ------------------------------------------------------ *)

exception Found of int

let find_violating t =
  (* Smallest-index violating basic var (Bland's rule). *)
  try
    for v = 0 to t.nvars - 1 do
      if t.is_basic.(v) then begin
        (match t.lower.(v) with
        | Some lb when Rat.compare t.beta.(v) lb.value < 0 -> raise (Found v)
        | _ -> ());
        match t.upper.(v) with
        | Some ub when Rat.compare t.beta.(v) ub.value > 0 -> raise (Found v)
        | _ -> ()
      end
    done;
    None
  with Found v -> Some v

let simplex_check t =
  let rec loop () =
    match find_violating t with
    | None -> Sat
    | Some bi ->
      let row = Hashtbl.find t.rows bi in
      let below =
        match t.lower.(bi) with
        | Some lb when Rat.compare t.beta.(bi) lb.value < 0 -> true
        | _ -> false
      in
      let target, own_reason =
        if below then
          let lb = Option.get t.lower.(bi) in
          (lb.value, lb.reason)
        else
          let ub = Option.get t.upper.(bi) in
          (ub.value, ub.reason)
      in
      (* Need to increase bi if below, decrease if above. *)
      let entries = Hashtbl.fold (fun v c acc -> (v, c) :: acc) row [] in
      let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
      let candidate =
        List.find_opt
          (fun (xj, a) ->
            let can_increase =
              match t.upper.(xj) with
              | Some ub -> Rat.compare t.beta.(xj) ub.value < 0
              | None -> true
            in
            let can_decrease =
              match t.lower.(xj) with
              | Some lb -> Rat.compare t.beta.(xj) lb.value > 0
              | None -> true
            in
            if below then (Rat.sign a > 0 && can_increase) || (Rat.sign a < 0 && can_decrease)
            else (Rat.sign a > 0 && can_decrease) || (Rat.sign a < 0 && can_increase))
          entries
      in
      (match candidate with
      | Some (xj, _) ->
        incr dbg_pivots;
        pivot_and_update t bi xj target;
        loop ()
      | None ->
        (* Infeasible: core from the bounds blocking each row var. *)
        let core =
          List.filter_map
            (fun (xj, a) ->
              let want_upper = if below then Rat.sign a > 0 else Rat.sign a < 0 in
              if want_upper then Option.map (fun (b : bound) -> b.reason) t.upper.(xj)
              else Option.map (fun (b : bound) -> b.reason) t.lower.(xj))
            entries
        in
        (if t.certify then begin
           (* Farkas witness: the violated bound of [bi] with multiplier 1
              plus each blocking bound with multiplier |a|; the row
              identity makes the combination cancel to [0 <= c], [c < 0]. *)
           let own =
             centry_of_bound t ~reason:own_reason ~lambda:Rat.one ~v:bi ~is_upper:(not below)
               ~bound:target
           in
           let rest =
             List.filter_map
               (fun (xj, a) ->
                 let want_upper = if below then Rat.sign a > 0 else Rat.sign a < 0 in
                 let blocking = if want_upper then t.upper.(xj) else t.lower.(xj) in
                 Option.map
                   (fun (b : bound) ->
                     centry_of_bound t ~reason:b.reason ~lambda:(Rat.abs a) ~v:xj
                       ~is_upper:want_upper ~bound:b.value)
                   blocking)
               entries
           in
           if List.length rest = List.length entries then set_cert t (own :: rest)
           else clear_cert t
         end);
        Conflict (List.sort_uniq compare (own_reason :: core)))
  in
  loop ()

(* --- integrality (branch and bound) ------------------------------------ *)

let save_bounds t = (Array.sub t.lower 0 t.nvars, Array.sub t.upper 0 t.nvars)

let restore_bounds t (lo, up) =
  Array.blit lo 0 t.lower 0 (Array.length lo);
  Array.blit up 0 t.upper 0 (Array.length up)

let find_fractional t =
  try
    for v = 0 to t.nvars - 1 do
      if not (Rat.is_integer t.beta.(v)) then raise (Found v)
    done;
    None
  with Found v -> Some v

let rec bb_check t budget =
  if !budget <= 0 then Unknown
  else begin
    decr budget;
    incr dbg_branches;
    match simplex_check t with
    | Conflict c -> Conflict c
    | Unknown -> Unknown
    | Sat -> (
      match find_fractional t with
      | None -> Sat
      | Some v -> (
        let fl = Rat.of_bigint (Rat.floor t.beta.(v)) in
        let saved = save_bounds t in
        let saved_conflict = t.conflict in
        (* Branch x <= floor. *)
        assert_upper t v fl (-1);
        let left = match t.conflict with
          | Some c -> t.conflict <- saved_conflict; Conflict c
          | None -> bb_check t budget
        in
        restore_bounds t saved;
        t.conflict <- saved_conflict;
        match left with
        | Sat -> Sat
        | Unknown -> Unknown
        | Conflict c1 -> (
          (* Branch x >= floor + 1. *)
          assert_lower t v (Rat.add fl Rat.one) (-1);
          let right = match t.conflict with
            | Some c -> t.conflict <- saved_conflict; Conflict c
            | None -> bb_check t budget
          in
          restore_bounds t saved;
          t.conflict <- saved_conflict;
          match right with
          | Sat -> Sat
          | Unknown -> Unknown
          | Conflict c2 ->
            (* Both branches dead: union of cores, minus branch markers.
               No Farkas witness exists for the union — the replay kernel
               records it as a trusted branch step. *)
            clear_cert t;
            Conflict (List.sort_uniq compare (List.filter (fun r -> r >= 0) (c1 @ c2))))))
  end

let check ?(max_branch = 2000) t =
  incr dbg_checks;
  match t.conflict with
  | Some c -> Conflict c
  | None -> (
    (* Re-establish basic betas (bounds asserted since the last check may
       have moved nonbasic vars). *)
    Hashtbl.iter (fun b row -> t.beta.(b) <- eval_row t row) t.rows;
    match bb_check t (ref max_branch) with
    | Unknown -> (
      (* Branch-and-bound cannot terminate on gcd/parity infeasibilities;
         the elimination pass decides those.  Running it only here keeps
         the common Sat/Conflict path cheap. *)
      match eliminate_equations t with
      | Some core ->
        clear_cert t;
        Conflict (List.sort_uniq compare core)
      | None -> Unknown)
    | v -> v)

let model_value t v = t.beta.(v)
