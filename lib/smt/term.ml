module Bigint = Vbase.Bigint

type sym = { sid : int; sname : string; sargs : Sort.t list; sret : Sort.t }

type bvop =
  | Band
  | Bor
  | Bxor
  | Bnot
  | Badd
  | Bsub
  | Bmul
  | Bneg
  | Bshl
  | Blshr
  | Bule
  | Bult
  | Bconcat
  | Bextract of int * int

type t = { tid : int; node : node; sort : Sort.t }

and node =
  | True
  | False
  | Int_lit of Bigint.t
  | Bv_lit of { width : int; value : Bigint.t }
  | Bvar of string * Sort.t
  | App of sym * t list
  | Eq of t * t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t
  | Add of t list
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Le of t * t
  | Lt of t * t
  | Idiv of t * t
  | Imod of t * t
  | Bv_op of bvop * t list
  | Forall of quant
  | Exists of quant

and quant = { qvars : (string * Sort.t) list; triggers : t list list; body : t }

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

module Sym = struct
  let lock = Mutex.create ()
  let table : (string, sym) Hashtbl.t = Hashtbl.create 256
  let counter = ref 0

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let declare sname sargs sret =
    with_lock (fun () ->
        match Hashtbl.find_opt table sname with
        | Some s ->
          if List.for_all2 Sort.equal s.sargs sargs && Sort.equal s.sret sret then s
          else invalid_arg (Printf.sprintf "Sym.declare: %s redeclared at new signature" sname)
        | None ->
          incr counter;
          let s = { sid = !counter; sname; sargs; sret } in
          Hashtbl.add table sname s;
          s)

  let fresh prefix sargs sret =
    with_lock (fun () ->
        incr counter;
        let sname = Printf.sprintf "%s!%d" prefix !counter in
        let s = { sid = !counter; sname; sargs; sret } in
        Hashtbl.add table sname s;
        s)

  let equal a b = a.sid = b.sid
  let hash s = s.sid
end

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let node_equal n1 n2 =
  match (n1, n2) with
  | True, True | False, False -> true
  | Int_lit a, Int_lit b -> Bigint.equal a b
  | Bv_lit a, Bv_lit b -> a.width = b.width && Bigint.equal a.value b.value
  | Bvar (x, s), Bvar (y, u) -> String.equal x y && Sort.equal s u
  | App (f, xs), App (g, ys) ->
    Sym.equal f g && List.length xs = List.length ys && List.for_all2 (fun a b -> a == b) xs ys
  | Eq (a, b), Eq (c, d)
  | Implies (a, b), Implies (c, d)
  | Iff (a, b), Iff (c, d)
  | Sub (a, b), Sub (c, d)
  | Mul (a, b), Mul (c, d)
  | Le (a, b), Le (c, d)
  | Lt (a, b), Lt (c, d)
  | Idiv (a, b), Idiv (c, d)
  | Imod (a, b), Imod (c, d) -> a == c && b == d
  | Not a, Not b -> a == b
  | Neg a, Neg b -> a == b
  | And xs, And ys | Or xs, Or ys | Add xs, Add ys ->
    List.length xs = List.length ys && List.for_all2 (fun a b -> a == b) xs ys
  | Ite (a, b, c), Ite (d, e, f) -> a == d && b == e && c == f
  | Bv_op (o1, xs), Bv_op (o2, ys) ->
    o1 = o2 && List.length xs = List.length ys && List.for_all2 (fun a b -> a == b) xs ys
  | Forall q1, Forall q2 | Exists q1, Exists q2 ->
    q1.body == q2.body
    && List.length q1.qvars = List.length q2.qvars
    && List.for_all2
         (fun (x, s) (y, u) -> String.equal x y && Sort.equal s u)
         q1.qvars q2.qvars
    && List.length q1.triggers = List.length q2.triggers
    && List.for_all2
         (fun g1 g2 ->
           List.length g1 = List.length g2 && List.for_all2 (fun a b -> a == b) g1 g2)
         q1.triggers q2.triggers
  | ( ( True | False | Int_lit _ | Bv_lit _ | Bvar _ | App _ | Eq _ | Not _ | And _ | Or _
      | Implies _ | Iff _ | Ite _ | Add _ | Sub _ | Mul _ | Neg _ | Le _ | Lt _ | Idiv _
      | Imod _ | Bv_op _ | Forall _ | Exists _ ),
      _ ) -> false

let node_hash n =
  let h xs = List.fold_left (fun acc t -> (acc * 31) + t.tid) 17 xs in
  match n with
  | True -> 1
  | False -> 2
  | Int_lit v -> 3 + (31 * Bigint.hash v)
  | Bv_lit { width; value } -> 5 + (31 * ((width * 131) + Bigint.hash value))
  | Bvar (x, s) -> 7 + (31 * ((Hashtbl.hash x * 131) + Sort.hash s))
  | App (f, xs) -> 11 + (31 * ((f.sid * 131) + h xs))
  | Eq (a, b) -> 13 + (31 * ((a.tid * 131) + b.tid))
  | Not a -> 17 + (31 * a.tid)
  | And xs -> 19 + (31 * h xs)
  | Or xs -> 23 + (31 * h xs)
  | Implies (a, b) -> 29 + (31 * ((a.tid * 131) + b.tid))
  | Iff (a, b) -> 31 + (31 * ((a.tid * 131) + b.tid))
  | Ite (a, b, c) -> 37 + (31 * ((((a.tid * 131) + b.tid) * 131) + c.tid))
  | Add xs -> 41 + (31 * h xs)
  | Sub (a, b) -> 43 + (31 * ((a.tid * 131) + b.tid))
  | Mul (a, b) -> 47 + (31 * ((a.tid * 131) + b.tid))
  | Neg a -> 53 + (31 * a.tid)
  | Le (a, b) -> 59 + (31 * ((a.tid * 131) + b.tid))
  | Lt (a, b) -> 61 + (31 * ((a.tid * 131) + b.tid))
  | Idiv (a, b) -> 67 + (31 * ((a.tid * 131) + b.tid))
  | Imod (a, b) -> 71 + (31 * ((a.tid * 131) + b.tid))
  | Bv_op (o, xs) -> 73 + (31 * ((Hashtbl.hash o * 131) + h xs))
  | Forall q -> 79 + (31 * ((q.body.tid * 131) + Hashtbl.hash q.qvars))
  | Exists q -> 83 + (31 * ((q.body.tid * 131) + Hashtbl.hash q.qvars))

module Node_tbl = Hashtbl.Make (struct
  type t = node

  let equal = node_equal
  let hash = node_hash
end)

let hc_lock = Mutex.create ()
let hc_table : t Node_tbl.t = Node_tbl.create 4096
let hc_counter = ref 0

let mk node sort =
  Mutex.lock hc_lock;
  let r =
    match Node_tbl.find_opt hc_table node with
    | Some t -> t
    | None ->
      incr hc_counter;
      let t = { tid = !hc_counter; node; sort } in
      Node_tbl.add hc_table node t;
      t
  in
  Mutex.unlock hc_lock;
  r

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let sort_of t = t.sort
let equal a b = a == b
let compare a b = Stdlib.compare a.tid b.tid
let hash t = t.tid

let tru = mk True Sort.Bool
let fls = mk False Sort.Bool
let bool_lit b = if b then tru else fls
let int_lit v = mk (Int_lit v) Sort.Int
let int_of i = int_lit (Bigint.of_int i)

let bv_lit ~width value =
  if width <= 0 then invalid_arg "Term.bv_lit: width";
  (* Reduce into [0, 2^width), handling arbitrarily negative inputs. *)
  let value = Bigint.fmod value (Bigint.pow Bigint.two width) in
  mk (Bv_lit { width; value }) (Sort.Bv width)

let bvar x s = mk (Bvar (x, s)) s

let app f args =
  let n_expected = List.length f.sargs and n_got = List.length args in
  if n_expected <> n_got then
    invalid_arg (Printf.sprintf "Term.app: %s expects %d args, got %d" f.sname n_expected n_got);
  List.iter2
    (fun s a ->
      if not (Sort.equal s a.sort) then
        invalid_arg
          (Printf.sprintf "Term.app: %s arg sort mismatch (%s vs %s)" f.sname (Sort.to_string s)
             (Sort.to_string a.sort)))
    f.sargs args;
  mk (App (f, args)) f.sret

let const f =
  if f.sargs <> [] then invalid_arg "Term.const: symbol has arguments";
  app f []

let require_bool t ctx =
  if not (Sort.equal t.sort Sort.Bool) then invalid_arg (ctx ^ ": expected Bool")

let require_int t ctx =
  if not (Sort.equal t.sort Sort.Int) then invalid_arg (ctx ^ ": expected Int")

let not_ t =
  require_bool t "Term.not_";
  match t.node with
  | True -> fls
  | False -> tru
  | Not u -> u
  | _ -> mk (Not t) Sort.Bool

let and_ ts =
  List.iter (fun t -> require_bool t "Term.and_") ts;
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
      match t.node with
      | True -> flatten acc rest
      | False -> None
      | And inner -> flatten (List.rev_append inner acc) rest
      | _ -> flatten (t :: acc) rest)
  in
  match flatten [] ts with
  | None -> fls
  | Some [] -> tru
  | Some [ t ] -> t
  | Some ts -> mk (And ts) Sort.Bool

let or_ ts =
  List.iter (fun t -> require_bool t "Term.or_") ts;
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
      match t.node with
      | False -> flatten acc rest
      | True -> None
      | Or inner -> flatten (List.rev_append inner acc) rest
      | _ -> flatten (t :: acc) rest)
  in
  match flatten [] ts with
  | None -> tru
  | Some [] -> fls
  | Some [ t ] -> t
  | Some ts -> mk (Or ts) Sort.Bool

let implies a b =
  require_bool a "Term.implies";
  require_bool b "Term.implies";
  match (a.node, b.node) with
  | True, _ -> b
  | False, _ -> tru
  | _, True -> tru
  | _, False -> not_ a
  | _ -> mk (Implies (a, b)) Sort.Bool

let iff a b =
  require_bool a "Term.iff";
  require_bool b "Term.iff";
  if a == b then tru
  else
    match (a.node, b.node) with
    | True, _ -> b
    | _, True -> a
    | False, _ -> not_ b
    | _, False -> not_ a
    | _ -> mk (Iff (a, b)) Sort.Bool

let eq a b =
  if not (Sort.equal a.sort b.sort) then invalid_arg "Term.eq: sort mismatch";
  if a == b then tru
  else
    match (a.node, b.node) with
    | Int_lit x, Int_lit y -> bool_lit (Bigint.equal x y)
    | Bv_lit x, Bv_lit y -> bool_lit (Bigint.equal x.value y.value)
    | _ when Sort.equal a.sort Sort.Bool -> iff a b
    | _ ->
      (* Order operands by id for canonical form. *)
      let a, b = if a.tid <= b.tid then (a, b) else (b, a) in
      mk (Eq (a, b)) Sort.Bool

let neq a b = not_ (eq a b)

let distinct ts =
  let rec pairs = function
    | [] | [ _ ] -> []
    | x :: rest -> List.map (fun y -> neq x y) rest @ pairs rest
  in
  and_ (pairs ts)

let ite c t e =
  require_bool c "Term.ite";
  if not (Sort.equal t.sort e.sort) then invalid_arg "Term.ite: branch sorts differ";
  match c.node with
  | True -> t
  | False -> e
  | _ -> if t == e then t else mk (Ite (c, t, e)) t.sort

let add ts =
  List.iter (fun t -> require_int t "Term.add") ts;
  let rec flatten const acc = function
    | [] -> (const, List.rev acc)
    | t :: rest -> (
      match t.node with
      | Int_lit v -> flatten (Bigint.add const v) acc rest
      | Add inner -> flatten const acc (inner @ rest)
      | _ -> flatten const (t :: acc) rest)
  in
  let const, rest = flatten Bigint.zero [] ts in
  let parts = if Bigint.is_zero const then rest else rest @ [ int_lit const ] in
  match parts with
  | [] -> int_lit Bigint.zero
  | [ t ] -> t
  | parts -> mk (Add parts) Sort.Int

let neg t =
  require_int t "Term.neg";
  match t.node with
  | Int_lit v -> int_lit (Bigint.neg v)
  | Neg u -> u
  | _ -> mk (Neg t) Sort.Int

let sub a b =
  require_int a "Term.sub";
  require_int b "Term.sub";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y -> int_lit (Bigint.sub x y)
  | _, Int_lit y when Bigint.is_zero y -> a
  | _ when a == b -> int_lit Bigint.zero
  | _ -> mk (Sub (a, b)) Sort.Int

let mul a b =
  require_int a "Term.mul";
  require_int b "Term.mul";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y -> int_lit (Bigint.mul x y)
  | Int_lit x, _ when Bigint.equal x Bigint.one -> b
  | _, Int_lit y when Bigint.equal y Bigint.one -> a
  | Int_lit x, _ when Bigint.is_zero x -> int_lit Bigint.zero
  | _, Int_lit y when Bigint.is_zero y -> int_lit Bigint.zero
  | _ ->
    let a, b = if a.tid <= b.tid then (a, b) else (b, a) in
    mk (Mul (a, b)) Sort.Int

let le a b =
  require_int a "Term.le";
  require_int b "Term.le";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y -> bool_lit (Bigint.compare x y <= 0)
  | _ when a == b -> tru
  | _ -> mk (Le (a, b)) Sort.Bool

let lt a b =
  require_int a "Term.lt";
  require_int b "Term.lt";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y -> bool_lit (Bigint.compare x y < 0)
  | _ when a == b -> fls
  | _ -> mk (Lt (a, b)) Sort.Bool

let ge a b = le b a
let gt a b = lt b a

let idiv a b =
  require_int a "Term.idiv";
  require_int b "Term.idiv";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y when not (Bigint.is_zero y) -> int_lit (fst (Bigint.ediv_rem x y))
  | _, Int_lit y when Bigint.equal y Bigint.one -> a
  | _ -> mk (Idiv (a, b)) Sort.Int

let imod a b =
  require_int a "Term.imod";
  require_int b "Term.imod";
  match (a.node, b.node) with
  | Int_lit x, Int_lit y when not (Bigint.is_zero y) -> int_lit (snd (Bigint.ediv_rem x y))
  | _, Int_lit y when Bigint.equal y Bigint.one -> int_lit Bigint.zero
  | _ -> mk (Imod (a, b)) Sort.Int

let bv_width t =
  match t.sort with
  | Sort.Bv w -> w
  | _ -> invalid_arg "Term.bv_op: expected bit-vector argument"

let mask_to_width w v = Bigint.fmod v (Bigint.pow Bigint.two w)

let bv_op op args =
  let lit2 f =
    match args with
    | [ { node = Bv_lit a; _ }; { node = Bv_lit b; _ } ] when a.width = b.width ->
      Some (bv_lit ~width:a.width (f a.width a.value b.value))
    | _ -> None
  in
  let bool2 f =
    match args with
    | [ { node = Bv_lit a; _ }; { node = Bv_lit b; _ } ] -> Some (bool_lit (f a.value b.value))
    | _ -> None
  in
  let same2 () =
    match args with
    | [ a; b ] ->
      let w = bv_width a in
      if bv_width b <> w then invalid_arg "Term.bv_op: width mismatch";
      w
    | _ -> invalid_arg "Term.bv_op: arity"
  in
  let bitwise f =
    (* Apply f bit by bit on magnitudes. *)
    fun w x y ->
      let r = ref Bigint.zero in
      for i = w - 1 downto 0 do
        r := Bigint.add (Bigint.add !r !r)
            (if f (Bigint.testbit x i) (Bigint.testbit y i) then Bigint.one else Bigint.zero)
      done;
      !r
  in
  match op with
  | Band | Bor | Bxor -> (
    let w = same2 () in
    let f =
      match op with
      | Band -> ( && )
      | Bor -> ( || )
      | _ -> ( <> )
    in
    match lit2 (bitwise f) with
    | Some t -> t
    | None -> mk (Bv_op (op, args)) (Sort.Bv w))
  | Badd | Bsub | Bmul -> (
    let w = same2 () in
    let f =
      match op with
      | Badd -> Bigint.add
      | Bsub -> Bigint.sub
      | _ -> Bigint.mul
    in
    match lit2 (fun w x y -> mask_to_width w (f x y)) with
    | Some t -> t
    | None -> mk (Bv_op (op, args)) (Sort.Bv w))
  | Bnot | Bneg -> (
    match args with
    | [ a ] -> (
      let w = bv_width a in
      match a.node with
      | Bv_lit { value; _ } ->
        let all1 = Bigint.sub (Bigint.pow Bigint.two w) Bigint.one in
        if op = Bnot then bv_lit ~width:w (Bigint.sub all1 value)
        else bv_lit ~width:w (Bigint.sub (Bigint.add all1 Bigint.one) value)
      | _ -> mk (Bv_op (op, args)) (Sort.Bv w))
    | _ -> invalid_arg "Term.bv_op: arity")
  | Bshl | Blshr -> (
    match args with
    | [ a; { node = Int_lit k; _ } ] -> (
      let w = bv_width a in
      let k = Bigint.to_int_exn k in
      if k < 0 then invalid_arg "Term.bv_op: negative shift";
      match a.node with
      | Bv_lit { value; _ } ->
        if op = Bshl then bv_lit ~width:w (mask_to_width w (Bigint.shift_left value k))
        else
          bv_lit ~width:w
            (if k >= w then Bigint.zero else fst (Bigint.ediv_rem value (Bigint.pow Bigint.two k)))
      | _ -> mk (Bv_op (op, args)) (Sort.Bv w))
    | _ -> invalid_arg "Term.bv_op: shift amount must be an integer literal")
  | Bule | Bult -> (
    let _w = same2 () in
    let f = if op = Bule then fun x y -> Bigint.compare x y <= 0 else fun x y -> Bigint.compare x y < 0 in
    match bool2 f with
    | Some t -> t
    | None -> mk (Bv_op (op, args)) Sort.Bool)
  | Bconcat -> (
    match args with
    | [ a; b ] -> (
      let wa = bv_width a and wb = bv_width b in
      match (a.node, b.node) with
      | Bv_lit x, Bv_lit y ->
        bv_lit ~width:(wa + wb) (Bigint.add (Bigint.shift_left x.value wb) y.value)
      | _ -> mk (Bv_op (op, args)) (Sort.Bv (wa + wb)))
    | _ -> invalid_arg "Term.bv_op: arity")
  | Bextract (hi, lo) -> (
    match args with
    | [ a ] -> (
      let w = bv_width a in
      if not (0 <= lo && lo <= hi && hi < w) then invalid_arg "Term.bv_op: extract bounds";
      let width = hi - lo + 1 in
      match a.node with
      | Bv_lit { value; _ } ->
        bv_lit ~width
          (Bigint.logand2p (fst (Bigint.ediv_rem value (Bigint.pow Bigint.two lo))) width)
      | _ -> mk (Bv_op (op, args)) (Sort.Bv width))
    | _ -> invalid_arg "Term.bv_op: arity")

let forall ?(triggers = []) qvars body =
  require_bool body "Term.forall";
  match (qvars, body.node) with
  | [], _ -> body
  | _, True -> tru
  | _ -> mk (Forall { qvars; triggers; body }) Sort.Bool

let exists ?(triggers = []) qvars body =
  require_bool body "Term.exists";
  match (qvars, body.node) with
  | [], _ -> body
  | _, False -> fls
  | _ -> mk (Exists { qvars; triggers; body }) Sort.Bool

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let children t =
  match t.node with
  | True | False | Int_lit _ | Bv_lit _ | Bvar _ -> []
  | App (_, xs) | And xs | Or xs | Add xs | Bv_op (_, xs) -> xs
  | Not a | Neg a -> [ a ]
  | Eq (a, b)
  | Implies (a, b)
  | Iff (a, b)
  | Sub (a, b)
  | Mul (a, b)
  | Le (a, b)
  | Lt (a, b)
  | Idiv (a, b)
  | Imod (a, b) -> [ a; b ]
  | Ite (a, b, c) -> [ a; b; c ]
  | Forall q | Exists q -> q.body :: List.concat q.triggers

let fold_subterms f acc t =
  let seen = Hashtbl.create 64 in
  let rec go acc t =
    if Hashtbl.mem seen t.tid then acc
    else begin
      Hashtbl.add seen t.tid ();
      let acc = f acc t in
      List.fold_left go acc (children t)
    end
  in
  go acc t

let size t = fold_subterms (fun n _ -> n + 1) 0 t

let tree_size t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.tid with
    | Some n -> n
    | None ->
      let n = 1 + List.fold_left (fun acc c -> acc + go c) 0 (children t) in
      Hashtbl.add memo t.tid n;
      n
  in
  go t

let free_bvars t =
  (* Accumulate bound variables not captured by an enclosing binder. *)
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go bound t =
    match t.node with
    | Bvar (x, s) ->
      if (not (List.mem_assoc x bound)) && not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := (x, s) :: !acc
      end
    | Forall q | Exists q ->
      let bound = q.qvars @ bound in
      go bound q.body;
      List.iter (List.iter (go bound)) q.triggers
    | _ -> List.iter (go bound) (children t)
  in
  go [] t;
  List.rev !acc

let rebuild t node_children =
  (* Reconstruct t with new children (same order as [children t]). *)
  match (t.node, node_children) with
  | (True | False | Int_lit _ | Bv_lit _ | Bvar _), _ -> t
  | App (f, _), xs -> app f xs
  | Eq _, [ a; b ] -> eq a b
  | Not _, [ a ] -> not_ a
  | And _, xs -> and_ xs
  | Or _, xs -> or_ xs
  | Implies _, [ a; b ] -> implies a b
  | Iff _, [ a; b ] -> iff a b
  | Ite _, [ a; b; c ] -> ite a b c
  | Add _, xs -> add xs
  | Sub _, [ a; b ] -> sub a b
  | Mul _, [ a; b ] -> mul a b
  | Neg _, [ a ] -> neg a
  | Le _, [ a; b ] -> le a b
  | Lt _, [ a; b ] -> lt a b
  | Idiv _, [ a; b ] -> idiv a b
  | Imod _, [ a; b ] -> imod a b
  | Bv_op (o, _), xs -> bv_op o xs
  | Forall q, body :: trigs ->
    let triggers, _ =
      List.fold_left
        (fun (groups, rest) g ->
          let n = List.length g in
          let rec take k xs = if k = 0 then ([], xs) else
              match xs with
              | x :: tl -> let a, b = take (k - 1) tl in (x :: a, b)
              | [] -> invalid_arg "rebuild"
          in
          let grp, rest = take n rest in
          (groups @ [ grp ], rest))
        ([], trigs) q.triggers
    in
    forall ~triggers q.qvars body
  | Exists q, body :: trigs ->
    let triggers, _ =
      List.fold_left
        (fun (groups, rest) g ->
          let n = List.length g in
          let rec take k xs = if k = 0 then ([], xs) else
              match xs with
              | x :: tl -> let a, b = take (k - 1) tl in (x :: a, b)
              | [] -> invalid_arg "rebuild"
          in
          let grp, rest = take n rest in
          (groups @ [ grp ], rest))
        ([], trigs) q.triggers
    in
    exists ~triggers q.qvars body
  | _ -> invalid_arg "Term.rebuild: arity mismatch"

let subst bindings t =
  if bindings = [] then t
  else begin
    let memo = Hashtbl.create 64 in
    let rec go bindings t =
      if bindings = [] then t
      else
        match Hashtbl.find_opt memo t.tid with
        | Some r -> r
        | None ->
          let r =
            match t.node with
            | Bvar (x, _) -> ( match List.assoc_opt x bindings with Some u -> u | None -> t)
            | Forall q | Exists q ->
              (* Drop shadowed bindings under the binder. *)
              let bindings' =
                List.filter (fun (x, _) -> not (List.mem_assoc x q.qvars)) bindings
              in
              if bindings' == bindings then rebuild t (List.map (go bindings) (children t))
              else begin
                (* Different binding set: bypass the memo table for this
                   subtree (rare; nested shadowing). *)
                let body = go_nomemo bindings' q.body in
                let triggers = List.map (List.map (go_nomemo bindings')) q.triggers in
                match t.node with
                | Forall _ -> forall ~triggers q.qvars body
                | _ -> exists ~triggers q.qvars body
              end
            | _ -> rebuild t (List.map (go bindings) (children t))
          in
          Hashtbl.add memo t.tid r;
          r
    and go_nomemo bindings t =
      match t.node with
      | Bvar (x, _) -> ( match List.assoc_opt x bindings with Some u -> u | None -> t)
      | Forall q | Exists q ->
        let bindings' = List.filter (fun (x, _) -> not (List.mem_assoc x q.qvars)) bindings in
        let body = go_nomemo bindings' q.body in
        let triggers = List.map (List.map (go_nomemo bindings')) q.triggers in
        (match t.node with Forall _ -> forall ~triggers q.qvars body | _ -> exists ~triggers q.qvars body)
      | _ -> rebuild t (List.map (go_nomemo bindings) (children t))
    in
    go bindings t
  end

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let bvop_name = function
  | Band -> "bvand"
  | Bor -> "bvor"
  | Bxor -> "bvxor"
  | Bnot -> "bvnot"
  | Badd -> "bvadd"
  | Bsub -> "bvsub"
  | Bmul -> "bvmul"
  | Bneg -> "bvneg"
  | Bshl -> "bvshl"
  | Blshr -> "bvlshr"
  | Bule -> "bvule"
  | Bult -> "bvult"
  | Bconcat -> "concat"
  | Bextract (hi, lo) -> Printf.sprintf "(_ extract %d %d)" hi lo

let rec pp fmt t =
  let open Format in
  let list name xs =
    fprintf fmt "@[<hov 1>(%s" name;
    List.iter (fun x -> fprintf fmt "@ %a" pp x) xs;
    fprintf fmt ")@]"
  in
  match t.node with
  | True -> pp_print_string fmt "true"
  | False -> pp_print_string fmt "false"
  | Int_lit v ->
    if Bigint.sign v < 0 then fprintf fmt "(- %s)" (Bigint.to_string (Bigint.neg v))
    else pp_print_string fmt (Bigint.to_string v)
  | Bv_lit { width; value } -> fprintf fmt "(_ bv%s %d)" (Bigint.to_string value) width
  | Bvar (x, _) -> pp_print_string fmt x
  | App (f, []) -> pp_print_string fmt f.sname
  | App (f, xs) -> list f.sname xs
  | Eq (a, b) -> list "=" [ a; b ]
  | Not a -> list "not" [ a ]
  | And xs -> list "and" xs
  | Or xs -> list "or" xs
  | Implies (a, b) -> list "=>" [ a; b ]
  | Iff (a, b) -> list "=" [ a; b ]
  | Ite (a, b, c) -> list "ite" [ a; b; c ]
  | Add xs -> list "+" xs
  | Sub (a, b) -> list "-" [ a; b ]
  | Mul (a, b) -> list "*" [ a; b ]
  | Neg a -> list "-" [ a ]
  | Le (a, b) -> list "<=" [ a; b ]
  | Lt (a, b) -> list "<" [ a; b ]
  | Idiv (a, b) -> list "div" [ a; b ]
  | Imod (a, b) -> list "mod" [ a; b ]
  | Bv_op (o, xs) -> list (bvop_name o) xs
  | Forall q | Exists q ->
    let kw = match t.node with Forall _ -> "forall" | _ -> "exists" in
    fprintf fmt "@[<hov 1>(%s (" kw;
    List.iteri
      (fun i (x, s) ->
        if i > 0 then fprintf fmt " ";
        fprintf fmt "(%s %s)" x (Sort.to_string s))
      q.qvars;
    fprintf fmt ")";
    if q.triggers <> [] then begin
      fprintf fmt "@ (! %a" pp q.body;
      List.iter
        (fun g ->
          fprintf fmt "@ :pattern (";
          List.iteri (fun i p -> if i > 0 then fprintf fmt " "; pp fmt p) g;
          fprintf fmt ")")
        q.triggers;
      fprintf fmt ")"
    end
    else fprintf fmt "@ %a" pp q.body;
    fprintf fmt ")@]"

let to_string t = Format.asprintf "%a" pp t

(* Estimate the byte size of a let-sharing SMT-LIB rendering: each distinct
   subterm printed once (head + per-child reference), which is how a
   production query printer with sharing behaves.  This is the metric behind
   the paper's "SMT (MB)" column. *)
let printed_size t =
  let head_bytes t =
    match t.node with
    | True -> 4
    | False -> 5
    | Int_lit v -> String.length (Bigint.to_string v)
    | Bv_lit { value; _ } -> 8 + String.length (Bigint.to_string value)
    | Bvar (x, _) -> String.length x
    | App (f, _) -> String.length f.sname + 2
    | Forall q | Exists q ->
      10 + List.fold_left (fun acc (x, s) -> acc + String.length x + String.length (Sort.to_string s) + 4) 0 q.qvars
    | Bv_op (o, _) -> String.length (bvop_name o) + 2
    | _ -> 5
  in
  fold_subterms (fun acc t -> acc + head_bytes t + (7 * List.length (children t))) 0 t
