(** E-matching quantifier instantiation.

    Maintains an index of ground application terms and a set of active
    universal quantifiers; each {!round} finds trigger matches and returns
    the (deduplicated) new instantiations.  The number of instances produced
    is governed by the trigger policy — this is where the conservative-vs-
    liberal trigger experiments (§3.1, Figure 7) get their performance
    separation. *)

type t
(** A matcher instance: the ground-term index, active quantifiers, dedup
    table and per-quantifier counters. *)

val create : Triggers.policy -> t
(** A fresh matcher inferring triggers under the given policy. *)

val add_ground : t -> Term.t -> unit
(** Indexes every ground application subterm of the given term. *)

val add_quant : t -> guard:int option -> Term.t -> unit
(** Registers a universally quantified term (must be a [Forall]) with an
    optional SAT guard literal (None for top-level axioms). *)

(** One instantiation produced by {!round}. *)
type instance = {
  quant : Term.t;  (** the forall this instantiates *)
  guard : int option;  (** the quantifier's SAT guard, if any *)
  body : Term.t;  (** instantiated body *)
}

val round : ?euf:Euf.t -> ?max_per_quant:int -> t -> max_instances:int -> instance list
(** Runs one instantiation round over the current index; returns only
    instances not generated before.  With [euf], matching is performed
    modulo the given congruence closure (the E-graph of the current model),
    as production SMT solvers do. *)

val stats_instances : t -> int
(** Total instances generated so far, across all quantifiers. *)

val stats_matches_tried : t -> int
(** Total pattern-match attempts (the inner-loop work metric of trigger
    matching; grows much faster than {!stats_instances} on liberal
    triggers). *)

val profile : t -> Profile.quant_profile list
(** Per-quantifier instantiation accounting, hottest first: instances
    emitted, candidate substitutions matched, duplicates discarded by the
    dedup table, and the first/last instantiation round each quantifier
    fired in.  Counters ride fields the matcher maintains anyway, so this
    only allocates the report. *)
