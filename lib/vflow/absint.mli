(** Flow-sensitive, interprocedural abstract interpretation over VIR
    function bodies.

    The analyzer runs the {!Dom} domains over statements: states map
    locals to abstract values, loop heads widen (after two precise
    rounds) and then narrow against the loop's declared invariants, and
    calls are summarised through callee contracts (ensures clauses
    refine the havocked result and [&mut] arguments) with spec bodies
    unfolded to a bounded depth.

    The same fixpoint also powers the VL040–VL046 lint codes; findings
    come back in deterministic program order. *)

module V = Vir_ast

type finding = {
  f_code : string;  (** "VL040" … "VL046" *)
  f_fn : string;
  f_msg : string;
}

type env = (string * Dom.t) list
(** Variable environment, for tests and callers; unbound = top of the
    variable's type. *)

val type_range : V.ty -> Dom.t
(** The abstract value of an arbitrary inhabitant of a type
    ([u8] → [0, 255], etc.). *)

val eval_expr : ?depth:int -> V.program -> env -> V.expr -> Dom.t
(** Abstract evaluation of a VIR expression; [depth] bounds spec-body
    unfolding (default 3).  Sound w.r.t. [Interp.eval_expr]: the
    concrete value is always a member of the abstract one. *)

val analyze_fn : V.program -> V.fndecl -> finding list
(** Findings for one function (entry preconditions + body fixpoint). *)

val analyze_program : V.program -> finding list
(** All functions, in program order. *)
