(** VC-level prescreen: abstract interpretation over SMT terms.

    Given a VC's hypotheses and goal, builds an abstract environment by
    propagating interval/congruence/boolean constraints from the
    hypotheses (ignoring quantified axioms — sound: dropping hypotheses
    only makes proving harder), then evaluates the goal:

    - [Proved]: the goal is definitely true in {e every} model of the
      hypotheses (or the hypotheses are contradictory — an infeasible
      path).  Since the abstract semantics over-approximates, this
      implies SMT validity; the crosscheck in [bin/analyze_smoke]
      re-proves every such verdict with the solver.
    - [Refuted]: the goal is definitely false in every model — advisory
      only, the driver still runs the solver (the hypotheses might be
      unsatisfiable in a way the domains cannot see).
    - [Unknown]: fall through to SMT, carrying {!result.facts} as extra
      ground hypotheses and {!result.drop} as prunable vacuous
      hypotheses.

    Verdicts are deterministic: they depend only on term structure,
    never on hash-cons ids, and derived facts are emitted in sorted
    rendering order. *)

type verdict = Proved | Refuted | Unknown

type result = {
  verdict : verdict;
  vacuous : bool;  (** the hypotheses themselves are contradictory *)
  facts : Smt.Term.t list;
      (** derived ground facts (variable ranges, decided booleans) not
          syntactically present among the hypotheses; sorted, capped *)
  drop : Smt.Term.t list;
      (** hypotheses of the form [path ==> _] whose path is abstractly
          false — dropping them from the query is sound and shrinks it *)
  passes : int;  (** propagation passes until fixpoint (or cap) *)
}

val check : ?max_passes:int -> hyps:Smt.Term.t list -> goal:Smt.Term.t -> unit -> result
(** [max_passes] defaults to 6; each pass re-propagates every
    hypothesis, so the abstract environment is a post-fixpoint when the
    pass count comes in under the cap. *)

val verdict_string : verdict -> string
