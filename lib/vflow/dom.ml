(* Abstract domains: interval × congruence for Int, three-valued
   booleans for Bool.  Every operation over-approximates its concrete
   counterpart; soundness is swept by qcheck against the concrete
   interpreter in test/test_vflow.ml. *)

module B = Vbase.Bigint

type bound = NegInf | Fin of B.t | PosInf

type itv = { lo : bound; hi : bound }

type cong = { m : B.t; r : B.t }

type bool3 = Bfalse | Btrue | Bmaybe

type t = Bot | Abool of bool3 | Aint of itv * cong | Top

(* ------------------------------ bounds ----------------------------- *)

let bcmp a b =
  match (a, b) with
  | NegInf, NegInf | PosInf, PosInf -> 0
  | NegInf, _ -> -1
  | _, NegInf -> 1
  | PosInf, _ -> 1
  | _, PosInf -> -1
  | Fin x, Fin y -> B.compare x y

let bmin a b = if bcmp a b <= 0 then a else b
let bmax a b = if bcmp a b >= 0 then a else b

(* Addition of like-positioned bounds (lo+lo or hi+hi); mixed infinities
   cannot arise there. *)
let badd a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (B.add x y)
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf

let bneg = function NegInf -> PosInf | PosInf -> NegInf | Fin x -> Fin (B.neg x)

let bound_add b c =
  match b with NegInf -> NegInf | PosInf -> PosInf | Fin x -> Fin (B.add x c)

(* Bound multiplication with the 0 * ∞ = 0 convention (sound for corner
   candidates: a dominating infinite candidate always exists when the
   true range is unbounded). *)
let bmul a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (B.mul x y)
  | Fin z, (NegInf | PosInf) when B.is_zero z -> Fin B.zero
  | (NegInf | PosInf), Fin z when B.is_zero z -> Fin B.zero
  | Fin x, NegInf -> if B.sign x > 0 then NegInf else PosInf
  | Fin x, PosInf -> if B.sign x > 0 then PosInf else NegInf
  | NegInf, Fin y -> if B.sign y > 0 then NegInf else PosInf
  | PosInf, Fin y -> if B.sign y > 0 then PosInf else NegInf
  | NegInf, NegInf | PosInf, PosInf -> PosInf
  | NegInf, PosInf | PosInf, NegInf -> NegInf

(* ---------------------------- congruence --------------------------- *)

let cong_top = { m = B.one; r = B.zero }
let cong_const c = { m = B.zero; r = c }
let cong_is_top c = B.equal c.m B.one

let cong_norm c =
  if B.is_zero c.m then c
  else if B.equal c.m B.one then cong_top
  else { c with r = B.fmod c.r c.m }

let cong_join a b =
  if B.is_zero a.m && B.is_zero b.m && B.equal a.r b.r then a
  else
    let m = B.gcd (B.gcd a.m b.m) (B.abs (B.sub a.r b.r)) in
    if B.is_zero m then cong_const a.r else cong_norm { m; r = a.r }

(* Sound coarse meet: detect provable contradiction; otherwise keep the
   tighter operand (any over-approximation of the intersection is a
   valid meet). *)
let cong_meet a b =
  let compatible =
    let g = B.gcd a.m b.m in
    if B.is_zero g then B.equal a.r b.r
    else B.is_zero (B.fmod (B.sub a.r b.r) g)
  in
  if not compatible then None
  else if B.is_zero a.m then Some a
  else if B.is_zero b.m then Some b
  else if B.compare a.m b.m >= 0 then Some a
  else Some b

let cong_leq a b =
  (* a ⊑ b: every x ≡ a.r (mod a.m) satisfies x ≡ b.r (mod b.m). *)
  if cong_is_top b then true
  else if B.is_zero a.m then
    if B.is_zero b.m then B.equal a.r b.r
    else B.is_zero (B.fmod (B.sub a.r b.r) b.m)
  else if B.is_zero b.m then false
  else
    B.is_zero (B.fmod a.m b.m) && B.is_zero (B.fmod (B.sub a.r b.r) b.m)

let cong_add a b =
  let m = B.gcd a.m b.m in
  if B.is_zero m then cong_const (B.add a.r b.r)
  else cong_norm { m; r = B.add a.r b.r }

let cong_neg a =
  if B.is_zero a.m then cong_const (B.neg a.r) else cong_norm { a with r = B.neg a.r }

let cong_sub a b = cong_add a (cong_neg b)

let cong_mul a b =
  let m = B.gcd (B.mul a.m b.m) (B.gcd (B.mul a.m b.r) (B.mul b.m a.r)) in
  if B.is_zero m then cong_const (B.mul a.r b.r)
  else cong_norm { m; r = B.mul a.r b.r }

let cong_mem x c =
  if B.is_zero c.m then B.equal x c.r else B.equal (B.fmod x c.m) (B.fmod c.r c.m)

(* ---------------------------- normalising -------------------------- *)

let itv_empty i = bcmp i.lo i.hi > 0

(* Tighten a finite bound inward to the nearest member of the
   congruence class. *)
let tighten_lo lo c =
  match lo with
  | Fin x when not (cong_is_top c) && B.sign c.m > 0 ->
    let d = B.fmod (B.sub c.r x) c.m in
    Fin (B.add x d)
  | _ -> lo

let tighten_hi hi c =
  match hi with
  | Fin x when not (cong_is_top c) && B.sign c.m > 0 ->
    let d = B.fmod (B.sub x c.r) c.m in
    Fin (B.sub x d)
  | _ -> hi

let mk_int i c =
  let c = cong_norm c in
  if itv_empty i then Bot
  else if B.is_zero c.m then
    (* Constant: intersect with the interval. *)
    if bcmp (Fin c.r) i.lo >= 0 && bcmp (Fin c.r) i.hi <= 0 then
      Aint ({ lo = Fin c.r; hi = Fin c.r }, c)
    else Bot
  else
    let lo = tighten_lo i.lo c and hi = tighten_hi i.hi c in
    if bcmp lo hi > 0 then Bot
    else
      match (lo, hi) with
      | Fin a, Fin b when B.equal a b -> Aint ({ lo; hi }, cong_const a)
      | _ -> Aint ({ lo; hi }, c)

let top_int = Aint ({ lo = NegInf; hi = PosInf }, cong_top)
let of_bigint c = Aint ({ lo = Fin c; hi = Fin c }, cong_const c)
let of_int n = of_bigint (B.of_int n)
let of_bool b = Abool (if b then Btrue else Bfalse)
let of_bool3 b3 = Abool b3
let range lo hi = mk_int { lo; hi } cong_top
let range_i lo hi = range (Fin (B.of_int lo)) (Fin (B.of_int hi))

(* ----------------------------- lattice ----------------------------- *)

let is_bot = function Bot -> true | _ -> false

let join3 a b = if a = b then a else Bmaybe

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Abool x, Abool y -> Abool (join3 x y)
  | Aint (i1, c1), Aint (i2, c2) ->
    mk_int { lo = bmin i1.lo i2.lo; hi = bmax i1.hi i2.hi } (cong_join c1 c2)
  | (Abool _ | Aint _), _ -> Top

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Abool x, Abool y ->
    if x = y then a
    else if x = Bmaybe then b
    else if y = Bmaybe then a
    else Bot
  | Aint (i1, c1), Aint (i2, c2) -> (
    match cong_meet c1 c2 with
    | None -> Bot
    | Some c -> mk_int { lo = bmax i1.lo i2.lo; hi = bmin i1.hi i2.hi } c)
  | (Abool _ | Aint _), _ -> Bot

let widen old nw =
  match (old, nw) with
  | Bot, x -> x
  | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Abool x, Abool y -> Abool (join3 x y)
  | Aint (i1, c1), Aint (i2, c2) ->
    let lo = if bcmp i2.lo i1.lo < 0 then NegInf else i1.lo in
    let hi = if bcmp i2.hi i1.hi > 0 then PosInf else i1.hi in
    (* cong_join strictly descends the (finite) divisor chain, so using
       it as the widening preserves termination. *)
    mk_int { lo; hi } (cong_join c1 c2)
  | (Abool _ | Aint _), _ -> Top

let leq3 a b = a = b || b = Bmaybe

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Top, _ -> false
  | Abool x, Abool y -> leq3 x y
  | Aint (i1, c1), Aint (i2, c2) ->
    bcmp i2.lo i1.lo <= 0 && bcmp i1.hi i2.hi <= 0 && cong_leq c1 c2
  | (Abool _ | Aint _), _ -> false

(* ------------------------- concretisation -------------------------- *)

let mem_int x = function
  | Bot -> false
  | Top -> true
  | Abool _ -> false
  | Aint (i, c) ->
    bcmp (Fin x) i.lo >= 0 && bcmp (Fin x) i.hi <= 0 && cong_mem x c

let mem_bool b = function
  | Bot -> false
  | Top -> true
  | Aint _ -> false
  | Abool Bmaybe -> true
  | Abool Btrue -> b
  | Abool Bfalse -> not b

let const_int = function
  | Aint (_, c) when B.is_zero c.m -> Some c.r
  | _ -> None

let itv_of = function Aint (i, _) -> Some i | _ -> None

(* ---------------------------- arithmetic --------------------------- *)

let lift2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Aint (i1, c1), Aint (i2, c2) -> f (i1, c1) (i2, c2)
  | _ -> Top

let add =
  lift2 (fun (i1, c1) (i2, c2) ->
      mk_int { lo = badd i1.lo i2.lo; hi = badd i1.hi i2.hi } (cong_add c1 c2))

let neg_ = function
  | Bot -> Bot
  | Aint (i, c) -> mk_int { lo = bneg i.hi; hi = bneg i.lo } (cong_neg c)
  | _ -> Top

let sub a b =
  lift2
    (fun (i1, c1) (i2, c2) ->
      mk_int { lo = badd i1.lo (bneg i2.hi); hi = badd i1.hi (bneg i2.lo) } (cong_sub c1 c2))
    a b

let mul =
  lift2 (fun (i1, c1) (i2, c2) ->
      let cs = [ bmul i1.lo i2.lo; bmul i1.lo i2.hi; bmul i1.hi i2.lo; bmul i1.hi i2.hi ] in
      let lo = List.fold_left bmin PosInf cs and hi = List.fold_left bmax NegInf cs in
      mk_int { lo; hi } (cong_mul c1 c2))

(* Euclidean division; precise corners only for strictly positive
   divisors (remainder in [0, d) means the quotient is floor(a/d)). *)
let bediv a d =
  (* d : B.t, d > 0 *)
  match a with NegInf -> NegInf | PosInf -> PosInf | Fin x -> Fin (B.fdiv x d)

let ediv =
  lift2 (fun (i1, _) (i2, _) ->
      match (i2.lo, i2.hi) with
      | Fin l, _ when B.sign l > 0 ->
        let corner a d = match d with
          | Fin dv -> bediv a dv
          | PosInf -> (
            (* limit of floor(a/d) as d → ∞ *)
            match a with
            | NegInf -> Fin B.minus_one
            | PosInf -> Fin B.zero
            | Fin x -> if B.sign x >= 0 then Fin B.zero else Fin B.minus_one)
          | NegInf -> assert false
        in
        let cs =
          [ corner i1.lo i2.lo; corner i1.lo i2.hi; corner i1.hi i2.lo; corner i1.hi i2.hi ]
        in
        let lo = List.fold_left bmin PosInf cs and hi = List.fold_left bmax NegInf cs in
        mk_int { lo; hi } cong_top
      | _ -> top_int)

let emod =
  lift2 (fun (i1, c1) (i2, _) ->
      match (i2.lo, i2.hi) with
      | Fin l, Fin h when B.equal l h && B.sign l > 0 ->
        let m = l in
        (* x already within [0, m): identity. *)
        if bcmp i1.lo (Fin B.zero) >= 0 && bcmp i1.hi (Fin (B.sub m B.one)) <= 0 then
          mk_int i1 c1
        else
          (* x ≡ r (mod c1.m) with m | c1.m pins the remainder exactly. *)
          let c =
            if (not (cong_is_top c1)) && B.sign c1.m > 0 && B.is_zero (B.fmod c1.m m)
            then cong_const (B.fmod c1.r m)
            else if B.is_zero c1.m then cong_const (B.fmod c1.r m)
            else cong_top
          in
          mk_int { lo = Fin B.zero; hi = Fin (B.sub m B.one) } c
      | Fin l, hi when B.sign l > 0 ->
        let hi' = match hi with Fin h -> Fin (B.sub h B.one) | b -> b in
        mk_int { lo = Fin B.zero; hi = hi' } cong_top
      | _ -> top_int)

(* Bit operations, only informative over non-negative operands. *)
let nonneg i = bcmp i.lo (Fin B.zero) >= 0

let next_pow2_minus1 = function
  | PosInf | NegInf -> PosInf
  | Fin x ->
    let rec go p = if B.compare p x > 0 then p else go (B.shift_left p 1) in
    Fin (B.sub (go B.one) B.one)

let bit_and =
  lift2 (fun (i1, _) (i2, _) ->
      if nonneg i1 && nonneg i2 then
        mk_int { lo = Fin B.zero; hi = bmin i1.hi i2.hi } cong_top
      else top_int)

let bit_or =
  lift2 (fun (i1, _) (i2, _) ->
      if nonneg i1 && nonneg i2 then
        (* Each operand < 2^k bounds the result below 2^k. *)
        let cap = bmax (next_pow2_minus1 i1.hi) (next_pow2_minus1 i2.hi) in
        mk_int { lo = Fin B.zero; hi = cap } cong_top
      else top_int)

let bit_xor = bit_or

let shl a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Aint (i1, c1), Aint (_, c2) when B.is_zero c2.m && B.sign c2.r >= 0 -> (
    match B.to_int_opt c2.r with
    | Some s when s <= 256 ->
      let f = B.pow B.two s in
      mul (Aint (i1, c1)) (of_bigint f)
    | _ -> if nonneg i1 then mk_int { lo = Fin B.zero; hi = PosInf } cong_top else top_int)
  | Aint (i1, _), Aint (i2, _) when nonneg i1 && nonneg i2 ->
    mk_int { lo = Fin B.zero; hi = PosInf } cong_top
  | _ -> Top

let shr a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Aint (i1, _), Aint (i2, _) when nonneg i1 && nonneg i2 ->
    mk_int { lo = Fin B.zero; hi = i1.hi } cong_top
  | _ -> Top

(* --------------------------- comparisons --------------------------- *)

let le3 a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bmaybe (* vacuous; caller handles Bot *)
  | Aint (i1, _), Aint (i2, _) ->
    if bcmp i1.hi i2.lo <= 0 then Btrue
    else if bcmp i1.lo i2.hi > 0 then Bfalse
    else Bmaybe
  | _ -> Bmaybe

let lt3 a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bmaybe
  | Aint (i1, _), Aint (i2, _) ->
    if bcmp i1.hi i2.lo < 0 then Btrue
    else if bcmp i1.lo i2.hi >= 0 then Bfalse
    else Bmaybe
  | _ -> Bmaybe

let eq3 a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bmaybe
  | Aint (i1, c1), Aint (i2, c2) -> (
    match (const_int a, const_int b) with
    | Some x, Some y -> if B.equal x y then Btrue else Bfalse
    | _ ->
      if bcmp i1.hi i2.lo < 0 || bcmp i2.hi i1.lo < 0 then Bfalse
      else if cong_meet c1 c2 = None then Bfalse
      else Bmaybe)
  | Abool x, Abool y ->
    if x <> Bmaybe && x = y then Btrue
    else if (x = Btrue && y = Bfalse) || (x = Bfalse && y = Btrue) then Bfalse
    else Bmaybe
  | _ -> Bmaybe

(* ------------------------- boolean algebra ------------------------- *)

let not3 = function Btrue -> Bfalse | Bfalse -> Btrue | Bmaybe -> Bmaybe

let and3 a b =
  match (a, b) with
  | Bfalse, _ | _, Bfalse -> Bfalse
  | Btrue, Btrue -> Btrue
  | _ -> Bmaybe

let or3 a b =
  match (a, b) with
  | Btrue, _ | _, Btrue -> Btrue
  | Bfalse, Bfalse -> Bfalse
  | _ -> Bmaybe

let implies3 a b = or3 (not3 a) b

let iff3 a b =
  match (a, b) with
  | Bmaybe, _ | _, Bmaybe -> Bmaybe
  | x, y -> if x = y then Btrue else Bfalse

let truth = function Abool b -> b | _ -> Bmaybe

(* ---------------------------- refinement --------------------------- *)

let bound_neg = bneg
let bound_cmp = bcmp

let clamp_le v b = meet v (mk_int { lo = NegInf; hi = b } cong_top)
let clamp_ge v b = meet v (mk_int { lo = b; hi = PosInf } cong_top)

(* ------------------------------ misc ------------------------------- *)

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | Fin x -> B.to_string x

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Abool Btrue -> "true"
  | Abool Bfalse -> "false"
  | Abool Bmaybe -> "bool?"
  | Aint (i, c) ->
    let base = Printf.sprintf "[%s, %s]" (bound_to_string i.lo) (bound_to_string i.hi) in
    if B.is_zero c.m || cong_is_top c then base
    else Printf.sprintf "%s =%s (mod %s)" base (B.to_string c.r) (B.to_string c.m)
