(* Abstract interpretation of one VC (hypotheses + goal) over hash-
   consed SMT terms.  The environment maps term ids to abstract values;
   evaluation is structural, with the environment consulted (by meet)
   at every node, so facts learned about compound terms sharpen later
   evaluations too.  All verdicts are term-structure-deterministic. *)

module T = Smt.Term
module Sort = Smt.Sort
module B = Vbase.Bigint

type verdict = Proved | Refuted | Unknown

type result = {
  verdict : verdict;
  vacuous : bool;
  facts : T.t list;
  drop : T.t list;
  passes : int;
}

let verdict_string = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Unknown -> "unknown"

type state = {
  env : (int, T.t * Dom.t) Hashtbl.t;  (* tid -> (term, abstract value) *)
  memo : (int, Dom.t) Hashtbl.t;  (* per-pass evaluation cache *)
  mutable changed : bool;
  mutable contra : bool;
}

let default_of_sort (s : Sort.t) =
  match s with
  | Sort.Int -> Dom.top_int
  | Sort.Bool -> Dom.Abool Dom.Bmaybe
  | Sort.Bv _ | Sort.Usort _ -> Dom.Top

let env_value st (t : T.t) =
  match Hashtbl.find_opt st.env t.T.tid with
  | Some (_, v) -> v
  | None -> default_of_sort t.T.sort

(* ----------------------------- evaluation --------------------------- *)

let rec eval st (t : T.t) : Dom.t =
  match Hashtbl.find_opt st.memo t.T.tid with
  | Some v -> v
  | None ->
    let structural =
      match t.T.node with
      | T.True -> Dom.Abool Dom.Btrue
      | T.False -> Dom.Abool Dom.Bfalse
      | T.Int_lit n -> Dom.of_bigint n
      | T.Bv_lit _ -> Dom.Top
      | T.Bvar (_, s) -> default_of_sort s
      | T.App _ -> default_of_sort t.T.sort
      | T.Eq (a, b) ->
        if T.equal a b then Dom.Abool Dom.Btrue
        else Dom.Abool (Dom.eq3 (eval st a) (eval st b))
      | T.Not a -> Dom.Abool (Dom.not3 (Dom.truth (eval st a)))
      | T.And ts ->
        Dom.Abool
          (List.fold_left (fun acc x -> Dom.and3 acc (Dom.truth (eval st x))) Dom.Btrue ts)
      | T.Or ts ->
        Dom.Abool
          (List.fold_left (fun acc x -> Dom.or3 acc (Dom.truth (eval st x))) Dom.Bfalse ts)
      | T.Implies (a, b) ->
        Dom.Abool (Dom.implies3 (Dom.truth (eval st a)) (Dom.truth (eval st b)))
      | T.Iff (a, b) -> Dom.Abool (Dom.iff3 (Dom.truth (eval st a)) (Dom.truth (eval st b)))
      | T.Ite (c, a, b) -> (
        match Dom.truth (eval st c) with
        | Dom.Btrue -> eval st a
        | Dom.Bfalse -> eval st b
        | Dom.Bmaybe -> Dom.join (eval st a) (eval st b))
      | T.Add ts -> List.fold_left (fun acc x -> Dom.add acc (eval st x)) (Dom.of_int 0) ts
      | T.Sub (a, b) -> Dom.sub (eval st a) (eval st b)
      | T.Mul (a, b) -> Dom.mul (eval st a) (eval st b)
      | T.Neg a -> Dom.neg_ (eval st a)
      | T.Le (a, b) -> Dom.Abool (Dom.le3 (eval st a) (eval st b))
      | T.Lt (a, b) -> Dom.Abool (Dom.lt3 (eval st a) (eval st b))
      | T.Idiv (a, b) -> Dom.ediv (eval st a) (eval st b)
      | T.Imod (a, b) -> Dom.emod (eval st a) (eval st b)
      | T.Bv_op _ -> Dom.Top
      | T.Forall _ | T.Exists _ -> Dom.Abool Dom.Bmaybe
    in
    let v =
      match Hashtbl.find_opt st.env t.T.tid with
      | Some (_, ev) ->
        let m = Dom.meet structural ev in
        (* A bottom here means the path constraints are contradictory
           with the structure; surface as contradiction, evaluate
           conservatively. *)
        if Dom.is_bot m then (
          st.contra <- true;
          structural)
        else m
      | None -> structural
    in
    Hashtbl.replace st.memo t.T.tid v;
    v

(* ----------------------------- refinement --------------------------- *)

(* Record that term [t]'s value lies in [v].  Literals just get a
   membership check (a failed one is a contradiction). *)
let refine st (t : T.t) (v : Dom.t) =
  match t.T.node with
  | T.True -> if not (Dom.mem_bool true v) then st.contra <- true
  | T.False -> if not (Dom.mem_bool false v) then st.contra <- true
  | T.Int_lit n -> if not (Dom.mem_int n v) then st.contra <- true
  | _ ->
    let cur = env_value st t in
    let nv = Dom.meet cur v in
    if Dom.is_bot nv then st.contra <- true
    else if not (Dom.leq cur nv) then (
      Hashtbl.replace st.env t.T.tid (t, nv);
      st.changed <- true)

let itv_or_top v =
  match Dom.itv_of v with
  | Some i -> i
  | None -> { Dom.lo = Dom.NegInf; hi = Dom.PosInf }

(* Push an upper bound [t <= b] (resp. lower bound) through linear
   structure, refining sub-terms: x + c <= b gives x <= b - c, etc. *)
let rec bound_upper st depth (t : T.t) (b : Dom.bound) =
  if b <> Dom.PosInf then begin
    refine st t (Dom.range Dom.NegInf b);
    if depth > 0 then
      match t.T.node with
      | T.Add ts ->
        List.iteri
          (fun i ti ->
            let rest_lo =
              List.fold_left
                (fun acc (j, tj) ->
                  match acc with
                  | None -> None
                  | Some s -> (
                    if i = j then Some s
                    else
                      match (itv_or_top (eval st tj)).Dom.lo with
                      | Dom.Fin l -> Some (B.add s l)
                      | _ -> None))
                (Some B.zero)
                (List.mapi (fun j tj -> (j, tj)) ts)
            in
            match rest_lo with
            | Some s -> bound_upper st (depth - 1) ti (Dom.bound_add b (B.neg s))
            | None -> ())
          ts
      | T.Sub (x, y) ->
        (match (itv_or_top (eval st y)).Dom.hi with
        | Dom.Fin hy -> bound_upper st (depth - 1) x (Dom.bound_add b hy)
        | _ -> ());
        (match ((itv_or_top (eval st x)).Dom.lo, b) with
        | Dom.Fin lx, Dom.Fin bv -> bound_lower st (depth - 1) y (Dom.Fin (B.sub lx bv))
        | _ -> ())
      | T.Neg x -> bound_lower st (depth - 1) x (Dom.bound_neg b)
      | _ -> ()
  end

and bound_lower st depth (t : T.t) (b : Dom.bound) =
  if b <> Dom.NegInf then begin
    refine st t (Dom.range b Dom.PosInf);
    if depth > 0 then
      match t.T.node with
      | T.Add ts ->
        List.iteri
          (fun i ti ->
            let rest_hi =
              List.fold_left
                (fun acc (j, tj) ->
                  match acc with
                  | None -> None
                  | Some s -> (
                    if i = j then Some s
                    else
                      match (itv_or_top (eval st tj)).Dom.hi with
                      | Dom.Fin h -> Some (B.add s h)
                      | _ -> None))
                (Some B.zero)
                (List.mapi (fun j tj -> (j, tj)) ts)
            in
            match rest_hi with
            | Some s -> bound_lower st (depth - 1) ti (Dom.bound_add b (B.neg s))
            | None -> ())
          ts
      | T.Sub (x, y) ->
        (match (itv_or_top (eval st y)).Dom.lo with
        | Dom.Fin ly -> bound_lower st (depth - 1) x (Dom.bound_add b ly)
        | _ -> ());
        (match ((itv_or_top (eval st x)).Dom.hi, b) with
        | Dom.Fin hx, Dom.Fin bv -> bound_upper st (depth - 1) y (Dom.Fin (B.sub hx bv))
        | _ -> ())
      | T.Neg x -> bound_upper st (depth - 1) x (Dom.bound_neg b)
      | _ -> ()
  end

let push_depth = 4

let assume_cmp st ~strict a b =
  (* a <= b, or a < b when strict *)
  let va = eval st a and vb = eval st b in
  let ib = itv_or_top vb and ia = itv_or_top va in
  let hi = if strict then Dom.bound_add ib.Dom.hi B.minus_one else ib.Dom.hi in
  let lo = if strict then Dom.bound_add ia.Dom.lo B.one else ia.Dom.lo in
  bound_upper st push_depth a hi;
  bound_lower st push_depth b lo

(* Propagate one hypothesis: constrain the environment so that [t]
   evaluates to [want] in every surviving concretisation. *)
let rec assume st (t : T.t) (want : bool) =
  match t.T.node with
  | T.True -> if not want then st.contra <- true
  | T.False -> if want then st.contra <- true
  | T.Not a -> assume st a (not want)
  | T.And ts when want -> List.iter (fun x -> assume st x true) ts
  | T.And ts (* not want *) -> (
    (* ¬(a ∧ b ∧ …): only informative once all but one conjunct is
       definitely true. *)
    let undecided =
      List.filter (fun x -> Dom.truth (eval st x) <> Dom.Btrue) ts
    in
    match undecided with
    | [ x ] -> assume st x false
    | [] -> st.contra <- true
    | _ -> ())
  | T.Or ts when not want -> List.iter (fun x -> assume st x false) ts
  | T.Or ts (* want *) -> (
    let undecided = List.filter (fun x -> Dom.truth (eval st x) <> Dom.Bfalse) ts in
    match undecided with
    | [ x ] -> assume st x true
    | [] -> st.contra <- true
    | _ -> ())
  | T.Implies (a, b) when want -> (
    match Dom.truth (eval st a) with
    | Dom.Btrue -> assume st b true
    | Dom.Bfalse -> ()
    | Dom.Bmaybe ->
      if Dom.truth (eval st b) = Dom.Bfalse then assume st a false)
  | T.Implies (a, b) (* not want *) ->
    assume st a true;
    assume st b false
  | T.Iff (a, b) -> (
    let pa = Dom.truth (eval st a) and pb = Dom.truth (eval st b) in
    match (want, pa, pb) with
    | true, Dom.Btrue, _ -> assume st b true
    | true, Dom.Bfalse, _ -> assume st b false
    | true, _, Dom.Btrue -> assume st a true
    | true, _, Dom.Bfalse -> assume st a false
    | false, Dom.Btrue, _ -> assume st b false
    | false, Dom.Bfalse, _ -> assume st b true
    | false, _, Dom.Btrue -> assume st a false
    | false, _, Dom.Bfalse -> assume st a true
    | _ -> ())
  | T.Ite (c, a, b) -> (
    match Dom.truth (eval st c) with
    | Dom.Btrue -> assume st a want
    | Dom.Bfalse -> assume st b want
    | Dom.Bmaybe -> ())
  | T.Eq (a, b) when want ->
    let m = Dom.meet (eval st a) (eval st b) in
    if Dom.is_bot m then st.contra <- true
    else begin
      refine st a m;
      refine st b m;
      (match Dom.itv_of m with
      | Some i ->
        bound_upper st push_depth a i.Dom.hi;
        bound_lower st push_depth a i.Dom.lo;
        bound_upper st push_depth b i.Dom.hi;
        bound_lower st push_depth b i.Dom.lo
      | None -> ())
    end
  | T.Eq (a, b) (* not want *) -> (
    if T.equal a b then st.contra <- true
    else
      (* Disequality only shaves an interval end-point pinned to the
         other side's constant. *)
      let shave atom other =
        match Dom.const_int (eval st other) with
        | None -> ()
        | Some c -> (
          match Dom.itv_of (env_value st atom) with
          | Some i when i.Dom.lo = Dom.Fin c ->
            refine st atom (Dom.range (Dom.Fin (B.add c B.one)) Dom.PosInf)
          | Some i when i.Dom.hi = Dom.Fin c ->
            refine st atom (Dom.range Dom.NegInf (Dom.Fin (B.sub c B.one)))
          | _ -> ())
      in
      shave a b;
      shave b a)
  | T.Le (a, b) when want -> assume_cmp st ~strict:false a b
  | T.Le (a, b) (* not want: b < a *) -> assume_cmp st ~strict:true b a
  | T.Lt (a, b) when want -> assume_cmp st ~strict:true a b
  | T.Lt (a, b) (* not want: b <= a *) -> assume_cmp st ~strict:false b a
  | T.App _ when Sort.equal t.T.sort Sort.Bool ->
    refine st t (Dom.Abool (if want then Dom.Btrue else Dom.Bfalse))
  | _ -> ()

(* ------------------------------- check ------------------------------ *)

let fresh_state () =
  { env = Hashtbl.create 64; memo = Hashtbl.create 256; changed = false; contra = false }

let snapshot st = Hashtbl.copy st.env

let restore st saved =
  Hashtbl.reset st.env;
  Hashtbl.iter (fun k v -> Hashtbl.replace st.env k v) saved;
  Hashtbl.reset st.memo

(* Prove the goal under the current environment, descending through
   implications (assuming antecedents) and conjunctions. *)
let rec prove st (g : T.t) : verdict =
  match g.T.node with
  | T.Implies (a, b) ->
    let saved = snapshot st and saved_contra = st.contra in
    st.contra <- false;
    assume st a true;
    Hashtbl.reset st.memo;
    let r = if st.contra then Proved (* infeasible path *) else prove st b in
    restore st saved;
    st.contra <- saved_contra;
    r
  | T.And ts ->
    List.fold_left
      (fun acc x ->
        match (acc, prove st x) with
        | Refuted, _ | _, Refuted -> Refuted
        | Proved, Proved -> Proved
        | _ -> Unknown)
      Proved ts
  | _ -> (
    match Dom.truth (eval st g) with
    | Dom.Btrue -> Proved
    | Dom.Bfalse -> Refuted
    | Dom.Bmaybe -> Unknown)

(* Conjuncts of the hypothesis list with top-level ∧ flattened — used to
   avoid emitting facts that merely restate a hypothesis. *)
let rec conjuncts acc (t : T.t) =
  match t.T.node with
  | T.And ts -> List.fold_left conjuncts acc ts
  | _ -> t :: acc

let max_facts = 64

let derive_facts st ~hyps =
  let known = List.fold_left conjuncts [] hyps in
  let mem f = List.exists (T.equal f) known in
  let fact_of _tid ((t : T.t), (v : Dom.t)) acc =
    match t.T.node with
    | T.App (_, _) -> (
      match v with
      | Dom.Aint (i, c) ->
        let acc =
          match Dom.const_int v with
          | Some cst ->
            let f = T.eq t (T.int_lit cst) in
            if mem f then acc else f :: acc
          | None ->
            let acc =
              match i.Dom.lo with
              | Dom.Fin l ->
                let f = T.le (T.int_lit l) t in
                if mem f then acc else f :: acc
              | _ -> acc
            in
            let acc =
              match i.Dom.hi with
              | Dom.Fin h ->
                let f = T.le t (T.int_lit h) in
                if mem f then acc else f :: acc
              | _ -> acc
            in
            let acc =
              if (not (B.is_zero c.Dom.m)) && B.compare c.Dom.m B.one > 0 then
                let f = T.eq (T.imod t (T.int_lit c.Dom.m)) (T.int_lit c.Dom.r) in
                if mem f then acc else f :: acc
              else acc
            in
            acc
        in
        acc
      | Dom.Abool Dom.Btrue -> if mem t then acc else t :: acc
      | Dom.Abool Dom.Bfalse ->
        let f = T.not_ t in
        if mem f then acc else f :: acc
      | _ -> acc)
    | _ -> acc
  in
  let facts = Hashtbl.fold fact_of st.env [] in
  (* Sort by rendering, never by hash-cons id: ids vary across runs and
     scheduling, renderings do not. *)
  let sorted = List.sort (fun a b -> String.compare (T.to_string a) (T.to_string b)) facts in
  let rec take n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl in
  take max_facts sorted

let vacuous_hyps st ~hyps =
  List.filter
    (fun (h : T.t) ->
      match h.T.node with
      | T.Implies (a, _) -> Dom.truth (eval st a) = Dom.Bfalse
      | _ -> false)
    hyps

let check ?(max_passes = 6) ~hyps ~goal () =
  let st = fresh_state () in
  let passes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes < max_passes && not st.contra do
    st.changed <- false;
    Hashtbl.reset st.memo;
    List.iter (fun h -> assume st h true) hyps;
    incr passes;
    if not st.changed then continue_ := false
  done;
  Hashtbl.reset st.memo;
  if st.contra then
    { verdict = Proved; vacuous = true; facts = []; drop = []; passes = !passes }
  else
    let verdict = prove st goal in
    Hashtbl.reset st.memo;
    let facts = if verdict = Proved then [] else derive_facts st ~hyps in
    let drop = if verdict = Proved then [] else vacuous_hyps st ~hyps in
    { verdict; vacuous = false; facts; drop; passes = !passes }
