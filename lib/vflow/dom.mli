(** Abstract domains for the Vflow prescreen analysis.

    One abstract value combines three reduced components:
    - an {e interval} [lo, hi] over mathematical integers with infinite
      end-points,
    - a {e congruence} "value ≡ r (mod m)" (m = 0 encodes the exact
      constant r, m = 1 is the top congruence; parity is m = 2), and
    - a three-valued {e boolean} for Bool-sorted terms.

    All operations are sound over-approximations of the concrete
    operation: if [x ∈ γ(a)] and [y ∈ γ(b)] then [x op y ∈ γ(op a b)].
    Comparisons return a {!bool3}: [Btrue]/[Bfalse] only when the
    relation holds/fails for {e every} pair of concretisations. *)

module B = Vbase.Bigint

type bound = NegInf | Fin of B.t | PosInf

type itv = { lo : bound; hi : bound }

type cong = { m : B.t; r : B.t }
(** [m = 0]: exactly the constant [r].  [m = 1]: no information.
    [m > 1]: value ≡ r (mod m) with 0 ≤ r < m. *)

type bool3 = Bfalse | Btrue | Bmaybe

type t =
  | Bot  (** no concretisation: unreachable / contradictory *)
  | Abool of bool3
  | Aint of itv * cong
  | Top  (** value of a sort the domains do not track *)

(* ----------------------------- building ---------------------------- *)

val top_int : t
(** Any mathematical integer. *)

val of_bigint : B.t -> t
val of_int : int -> t
val of_bool : bool -> t
val of_bool3 : bool3 -> t

val range : bound -> bound -> t
(** Interval with top congruence; [Bot] when empty. *)

val range_i : int -> int -> t

val mk_int : itv -> cong -> t
(** Normalising constructor: reduces interval against congruence,
    collapses singletons to constants, detects emptiness. *)

(* ----------------------------- lattice ----------------------------- *)

val is_bot : t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old new]: unstable interval bounds jump to ±∞; the
    congruence component uses its join (modulus chains are finite, so
    this still terminates). *)

val leq : t -> t -> bool
(** Partial order of the abstract lattice ([γ a ⊆ γ b]). *)

(* ------------------------- concretisation -------------------------- *)

val mem_int : B.t -> t -> bool
(** Is the concrete integer a member of the concretisation? *)

val mem_bool : bool -> t -> bool

val const_int : t -> B.t option
(** [Some c] when the value is exactly the integer constant [c]. *)

val itv_of : t -> itv option
(** The interval component of an [Aint]. *)

(* ---------------------------- arithmetic --------------------------- *)

val add : t -> t -> t
val sub : t -> t -> t
val neg_ : t -> t
val mul : t -> t -> t

val ediv : t -> t -> t
(** Euclidean division (matches [Smt.Term.Idiv] and VIR [Div]); precise
    only for strictly positive divisors, top otherwise. *)

val emod : t -> t -> t
(** Euclidean remainder, in [0, |divisor|). *)

val bit_and : t -> t -> t
val bit_or : t -> t -> t
val bit_xor : t -> t -> t
val shl : t -> t -> t
val shr : t -> t -> t

(* --------------------------- comparisons --------------------------- *)

val le3 : t -> t -> bool3
val lt3 : t -> t -> bool3
val eq3 : t -> t -> bool3
(** [eq3] consults both interval disjointness and congruence
    incompatibility for definite inequality. *)

(* ------------------------- boolean algebra ------------------------- *)

val not3 : bool3 -> bool3
val and3 : bool3 -> bool3 -> bool3
val or3 : bool3 -> bool3 -> bool3
val implies3 : bool3 -> bool3 -> bool3
val iff3 : bool3 -> bool3 -> bool3

val truth : t -> bool3
(** The boolean component of a value ([Bmaybe] for non-booleans,
    [Bfalse]-and-[Btrue]-impossible [Bot] maps to... [Bot] has no
    concretisation; callers should test {!is_bot} first — [truth Bot]
    is [Bmaybe] to stay sound by default). *)

(* ---------------------------- refinement --------------------------- *)

val clamp_le : t -> bound -> t
(** [clamp_le v b]: meet with the interval (-∞, b]. *)

val clamp_ge : t -> bound -> t

val bound_add : bound -> B.t -> bound
(** Shift a finite bound by a constant (infinities absorb). *)

val bound_neg : bound -> bound

val bound_cmp : bound -> bound -> int
(** Total order with [NegInf] least and [PosInf] greatest. *)

(* ------------------------------ misc ------------------------------- *)

val to_string : t -> string
(** Compact rendering for diagnostics, e.g. ["[0, 255] ≡ 1 (mod 2)"]. *)
