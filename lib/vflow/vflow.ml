(* Facade for the Vflow prescreen-analysis library.

   Layering: vflow sits below lib/core (which wires it into the driver
   as the escalation ladder's rung 0) and depends only on vbase, smt
   and vir_ast — it must know nothing of profiles, caching or
   scheduling. *)

module Dom = Dom
module Prescreen = Prescreen
module Absint = Absint

(* Bumping this invalidates prescreened cache entries (it salts Vcache
   fingerprints when Driver.Config.analyze is on). *)
let version = "vflow/1"

(* --------------------- bench-document schema ----------------------- *)

module J = Vbase.Json

let bench_schema = "verus-analyze-bench/1"

(* BENCH_analyze.json: the prescreen ablation table.  Self-validated by
   the bench binary before it writes the file. *)
let validate_analyze_bench (j : J.t) =
  let ( let* ) = Result.bind in
  let str o k = match J.member k o with Some (J.String s) -> Some s | _ -> None in
  let num o k = match J.member k o with Some v -> J.to_float v | None -> None in
  let int_ o k = match J.member k o with Some (J.Int n) -> Some n | _ -> None in
  let bool_ o k = match J.member k o with Some (J.Bool b) -> Some b | _ -> None in
  let need what o k f =
    match f o k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: missing or mistyped %S" what k)
  in
  let* () =
    match str j "schema" with
    | Some s when s = bench_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema %S (expected %s)" s bench_schema)
    | None -> Error "missing schema tag"
  in
  let* rows =
    match J.member "rows" j with
    | Some (J.List (_ :: _ as rows)) -> Ok rows
    | _ -> Error "rows: missing or empty"
  in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* _ = need "rows[]" row "profile" str in
        let* _ = need "rows[]" row "program" str in
        let* vcs = need "rows[]" row "vcs" int_ in
        let* disch = need "rows[]" row "discharged" int_ in
        let* () =
          if disch < 0 || disch > vcs then Error "rows[]: discharged out of [0, vcs]"
          else Ok ()
        in
        let* _ = need "rows[]" row "base_s" num in
        let* _ = need "rows[]" row "analyze_s" num in
        let* _ = need "rows[]" row "base_bytes" int_ in
        let* _ = need "rows[]" row "analyze_bytes" int_ in
        let* ok = need "rows[]" row "verified_equal" bool_ in
        if ok then Ok () else Error "rows[]: verified_equal is false")
      (Ok ()) rows
  in
  let* totals =
    match J.member "totals" j with
    | Some o -> Ok o
    | None -> Error "totals: missing"
  in
  let* total = need "totals" totals "total_vcs" int_ in
  let* disch = need "totals" totals "total_discharged" int_ in
  let* rate = need "totals" totals "discharge_rate" num in
  let* () =
    if rate < 0.0 || rate > 1.0 then Error "discharge_rate out of [0,1]" else Ok ()
  in
  let* () =
    if disch < 0 || disch > total then Error "total_discharged out of [0, total_vcs]"
    else Ok ()
  in
  if disch = 0 then Error "total_discharged is zero (prescreen discharged nothing)"
  else Ok ()
