(* Flow-sensitive abstract interpretation of VIR bodies.  States map
   locals to Dom values; loop heads join twice then widen, and the
   post-fixpoint is narrowed against the loop's declared invariants
   (invariant-guided narrowing).  Calls are summarised through callee
   contracts; spec bodies unfold to a bounded depth.  The VL040–VL046
   findings ride the same fixpoint. *)

module V = Vir_ast
module B = Vbase.Bigint
module SM = Map.Make (String)

type finding = { f_code : string; f_fn : string; f_msg : string }

type env = (string * Dom.t) list

let type_range (ty : V.ty) =
  match ty with
  | V.TBool -> Dom.Abool Dom.Bmaybe
  | V.TInt k -> (
    match V.int_bounds k with
    | None -> Dom.top_int
    | Some (lo, hi) -> Dom.range (Dom.Fin lo) (Dom.Fin hi))
  | V.TSeq _ | V.TData _ -> Dom.Top

(* ----------------------------- evaluation --------------------------- *)

let lookup m x = match SM.find_opt x m with Some v -> v | None -> Dom.Top

let rec eval_m ~depth (p : V.program) (m : Dom.t SM.t) (e : V.expr) : Dom.t =
  let ev = eval_m ~depth p m in
  match e with
  | V.EVar x -> lookup m x
  | V.EOld _ -> Dom.Top
  | V.EBool b -> Dom.of_bool b
  | V.EInt n -> Dom.of_int n
  | V.EUnop (V.Not, a) -> Dom.Abool (Dom.not3 (Dom.truth (ev a)))
  | V.EUnop (V.Neg, a) -> Dom.neg_ (ev a)
  | V.EBinop (op, a, b) -> (
    let va = ev a and vb = ev b in
    match op with
    | V.Add -> Dom.add va vb
    | V.Sub -> Dom.sub va vb
    | V.Mul -> Dom.mul va vb
    | V.Div -> Dom.ediv va vb
    | V.Mod -> Dom.emod va vb
    | V.Lt -> Dom.Abool (Dom.lt3 va vb)
    | V.Le -> Dom.Abool (Dom.le3 va vb)
    | V.Gt -> Dom.Abool (Dom.lt3 vb va)
    | V.Ge -> Dom.Abool (Dom.le3 vb va)
    | V.Eq -> Dom.Abool (Dom.eq3 va vb)
    | V.Ne -> Dom.Abool (Dom.not3 (Dom.eq3 va vb))
    | V.And -> Dom.Abool (Dom.and3 (Dom.truth va) (Dom.truth vb))
    | V.Or -> Dom.Abool (Dom.or3 (Dom.truth va) (Dom.truth vb))
    | V.Implies -> Dom.Abool (Dom.implies3 (Dom.truth va) (Dom.truth vb))
    | V.BitAnd -> Dom.bit_and va vb
    | V.BitOr -> Dom.bit_or va vb
    | V.BitXor -> Dom.bit_xor va vb
    | V.Shl -> Dom.shl va vb
    | V.Shr -> Dom.shr va vb)
  | V.EIte (c, a, b) -> (
    match Dom.truth (ev c) with
    | Dom.Btrue -> ev a
    | Dom.Bfalse -> ev b
    | Dom.Bmaybe -> Dom.join (ev a) (ev b))
  | V.ECall (f, args) -> (
    match List.find_opt (fun (fd : V.fndecl) -> String.equal fd.V.fname f) p.V.functions with
    | None -> Dom.Top
    | Some fd -> (
      let ret_range = match fd.V.ret with Some (_, ty) -> type_range ty | None -> Dom.Top in
      match fd.V.spec_body with
      | Some body when depth > 0 && List.length args = List.length fd.V.params ->
        let callee_env =
          List.fold_left2
            (fun acc (prm : V.param) a ->
              SM.add prm.V.pname (Dom.meet (ev a) (type_range prm.V.pty)) acc)
            SM.empty fd.V.params args
        in
        Dom.meet (eval_m ~depth:(depth - 1) p callee_env body) ret_range
      | _ -> ret_range))
  | V.ECtor _ | V.EField _ -> Dom.Top
  | V.EIs _ -> Dom.Abool Dom.Bmaybe
  | V.ESeq s -> (
    match s with
    | V.SeqLen _ -> Dom.range (Dom.Fin B.zero) Dom.PosInf
    | _ -> Dom.Top)
  | V.EForall _ | V.EExists _ -> Dom.Abool Dom.Bmaybe

let eval_expr ?(depth = 3) p (env : env) e =
  let m = List.fold_left (fun acc (x, v) -> SM.add x v acc) SM.empty env in
  eval_m ~depth p m e

(* ----------------------------- assumption --------------------------- *)

(* [Some (x, o)]: the expression's value is x + o. *)
let rec linear1 (e : V.expr) : (string * B.t) option =
  match e with
  | V.EVar x -> Some (x, B.zero)
  | V.EBinop (V.Add, a, V.EInt c) | V.EBinop (V.Add, V.EInt c, a) -> (
    match linear1 a with Some (x, o) -> Some (x, B.add o (B.of_int c)) | None -> None)
  | V.EBinop (V.Sub, a, V.EInt c) -> (
    match linear1 a with Some (x, o) -> Some (x, B.sub o (B.of_int c)) | None -> None)
  | _ -> None

let set_var m x v = if Dom.is_bot v then None else Some (SM.add x v m)

let ( >>= ) o f = match o with None -> None | Some x -> f x

(* Refine [m] so that [e] evaluates to [want]; [None] = infeasible. *)
let rec assume ~depth p m (e : V.expr) (want : bool) : Dom.t SM.t option =
  let ev = eval_m ~depth p m in
  match e with
  | V.EBool b -> if b = want then Some m else None
  | V.EUnop (V.Not, a) -> assume ~depth p m a (not want)
  | V.EBinop (V.And, a, b) when want ->
    assume ~depth p m a true >>= fun m -> assume ~depth p m b true
  | V.EBinop (V.And, a, b) ->
    if Dom.truth (ev a) = Dom.Btrue then assume ~depth p m b false
    else if Dom.truth (ev b) = Dom.Btrue then assume ~depth p m a false
    else Some m
  | V.EBinop (V.Or, a, b) when not want ->
    assume ~depth p m a false >>= fun m -> assume ~depth p m b false
  | V.EBinop (V.Or, a, b) ->
    if Dom.truth (ev a) = Dom.Bfalse then assume ~depth p m b true
    else if Dom.truth (ev b) = Dom.Bfalse then assume ~depth p m a true
    else Some m
  | V.EBinop (V.Implies, a, b) when want -> (
    match Dom.truth (ev a) with
    | Dom.Btrue -> assume ~depth p m b true
    | Dom.Bfalse -> Some m
    | Dom.Bmaybe ->
      if Dom.truth (ev b) = Dom.Bfalse then assume ~depth p m a false else Some m)
  | V.EBinop (V.Implies, a, b) ->
    assume ~depth p m a true >>= fun m -> assume ~depth p m b false
  | V.EBinop (V.Le, a, b) when want -> assume_le ~depth ~strict:false p m a b
  | V.EBinop (V.Le, a, b) -> assume_le ~depth ~strict:true p m b a
  | V.EBinop (V.Lt, a, b) when want -> assume_le ~depth ~strict:true p m a b
  | V.EBinop (V.Lt, a, b) -> assume_le ~depth ~strict:false p m b a
  | V.EBinop (V.Ge, a, b) -> assume ~depth p m (V.EBinop (V.Le, b, a)) want
  | V.EBinop (V.Gt, a, b) -> assume ~depth p m (V.EBinop (V.Lt, b, a)) want
  | V.EBinop (V.Eq, a, b) when want -> (
    let meetv = Dom.meet (ev a) (ev b) in
    if Dom.is_bot meetv then None
    else
      let refine m side =
        match linear1 side with
        | Some (x, o) ->
          (* x + o = meetv, so x = meetv - o *)
          set_var m x (Dom.meet (lookup m x) (Dom.sub meetv (Dom.of_bigint o)))
        | None -> Some m
      in
      refine m a >>= fun m -> refine m b)
  | V.EBinop (V.Eq, a, b) -> (
    (* Disequality: shave a constant end-point. *)
    let shave m side other =
      match (linear1 side, Dom.const_int (ev other)) with
      | Some (x, o), Some c -> (
        let c = B.sub c o in
        let cur = lookup m x in
        match Dom.itv_of cur with
        | Some i when i.Dom.lo = Dom.Fin c ->
          set_var m x (Dom.clamp_ge cur (Dom.Fin (B.add c B.one)))
        | Some i when i.Dom.hi = Dom.Fin c ->
          set_var m x (Dom.clamp_le cur (Dom.Fin (B.sub c B.one)))
        | _ -> Some m)
      | _ -> Some m
    in
    match Dom.eq3 (ev a) (ev b) with
    | Dom.Btrue -> None
    | _ -> shave m a b >>= fun m -> shave m b a)
  | V.EBinop (V.Ne, a, b) -> assume ~depth p m (V.EBinop (V.Eq, a, b)) (not want)
  | V.EIte (c, a, b) -> (
    match Dom.truth (ev c) with
    | Dom.Btrue -> assume ~depth p m a want
    | Dom.Bfalse -> assume ~depth p m b want
    | Dom.Bmaybe -> Some m)
  | V.EVar x ->
    set_var m x (Dom.meet (lookup m x) (Dom.Abool (if want then Dom.Btrue else Dom.Bfalse)))
  | V.ECall (f, args) -> (
    (* Unfold spec bodies so contracts phrased through predicates
       still refine the state. *)
    match List.find_opt (fun (fd : V.fndecl) -> String.equal fd.V.fname f) p.V.functions with
    | Some ({ V.spec_body = Some body; _ } as fd)
      when depth > 0
           && List.length args = List.length fd.V.params
           && List.for_all2
                (fun (prm : V.param) a ->
                  match a with V.EVar _ -> true | _ -> ignore prm; false)
                fd.V.params args ->
      let subst =
        List.map2
          (fun (prm : V.param) a ->
            match a with V.EVar x -> (prm.V.pname, x) | _ -> assert false)
          fd.V.params args
      in
      let rec rename (e : V.expr) : V.expr =
        match e with
        | V.EVar x -> (
          match List.assoc_opt x subst with Some y -> V.EVar y | None -> V.EVar x)
        | V.EOld _ | V.EBool _ | V.EInt _ -> e
        | V.EUnop (u, a) -> V.EUnop (u, rename a)
        | V.EBinop (op, a, b) -> V.EBinop (op, rename a, rename b)
        | V.EIte (a, b, c) -> V.EIte (rename a, rename b, rename c)
        | V.ECall (g, xs) -> V.ECall (g, List.map rename xs)
        | _ -> e
      in
      assume ~depth:(depth - 1) p m (rename body) want
    | _ -> Some m)
  | _ -> Some m

and assume_le ~depth ~strict p m a b =
  (* a <= b (or a < b when strict) *)
  let ev = eval_m ~depth p m in
  let va = ev a and vb = ev b in
  (match if strict then Dom.lt3 va vb else Dom.le3 va vb with
  | Dom.Bfalse -> None
  | _ -> Some m)
  >>= fun m ->
  let upper m =
    match (linear1 a, Dom.itv_of vb) with
    | Some (x, o), Some i ->
      let hi = if strict then Dom.bound_add i.Dom.hi B.minus_one else i.Dom.hi in
      set_var m x (Dom.clamp_le (lookup m x) (Dom.bound_add hi (B.neg o)))
    | _ -> Some m
  in
  let lower m =
    match (linear1 b, Dom.itv_of va) with
    | Some (x, o), Some i ->
      let lo = if strict then Dom.bound_add i.Dom.lo B.one else i.Dom.lo in
      set_var m x (Dom.clamp_ge (lookup m x) (Dom.bound_add lo (B.neg o)))
    | _ -> Some m
  in
  upper m >>= lower

(* ------------------------------ analysis ---------------------------- *)

type ctx = {
  prog : V.program;
  fn : V.fndecl;
  mutable findings : finding list;  (* reversed *)
  tenv : (string, V.ty) Hashtbl.t;
}

let emit ctx code fmt =
  Printf.ksprintf
    (fun msg -> ctx.findings <- { f_code = code; f_fn = ctx.fn.V.fname; f_msg = msg } :: ctx.findings)
    fmt

let depth = 3

(* States: [None] is unreachable code. *)
let join_st a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some m1, Some m2 ->
    Some
      (SM.merge
         (fun _ v1 v2 ->
           match (v1, v2) with
           | Some v1, Some v2 -> Some (Dom.join v1 v2)
           | _ -> Some Dom.Top)
         m1 m2)

let widen_st a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some m1, Some m2 ->
    Some
      (SM.merge
         (fun _ v1 v2 ->
           match (v1, v2) with
           | Some v1, Some v2 -> Some (Dom.widen v1 v2)
           | _ -> Some Dom.Top)
         m1 m2)

let leq_st a b =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some m1, Some m2 ->
    SM.for_all (fun x v2 -> Dom.leq (lookup m1 x) v2) m2
    && SM.for_all (fun x v1 -> Dom.leq v1 (lookup m2 x)) m1

(* ---- VL044: overflow-impossible exec arithmetic ---- *)

let rec infer_kind ctx (e : V.expr) : V.int_kind option =
  match e with
  | V.EVar x -> (
    match Hashtbl.find_opt ctx.tenv x with Some (V.TInt k) -> Some k | _ -> None)
  | V.EInt _ -> Some V.I_math
  | V.EUnop (V.Neg, a) -> infer_kind ctx a
  | V.EBinop ((V.Add | V.Sub | V.Mul | V.Div | V.Mod), a, b) -> (
    match (infer_kind ctx a, infer_kind ctx b) with
    | Some k, Some V.I_math | Some V.I_math, Some k -> Some k
    | Some k1, Some k2 ->
      Some (if V.int_bounds k1 < V.int_bounds k2 then k2 else k1)
    | _ -> None)
  | V.ECall (f, _) -> (
    match List.find_opt (fun (fd : V.fndecl) -> String.equal fd.V.fname f) ctx.prog.V.functions with
    | Some { V.ret = Some (_, V.TInt k); _ } -> Some k
    | _ -> None)
  | _ -> None

(* Scan the expressions of one statement under the current state and
   flag bounded-kind arithmetic whose mathematical result provably fits
   the kind (the overflow obligation is vacuous by intervals alone). *)
let check_overflow_sites ctx m (s : V.stmt) =
  if ctx.fn.V.fmode = V.Exec then
    List.iter
      (fun top ->
        V.fold_expr
          (fun () e ->
            match e with
            | V.EBinop ((V.Add | V.Sub | V.Mul) as op, a, b) -> (
              let kind =
                match (infer_kind ctx a, infer_kind ctx b) with
                | Some k, Some V.I_math when k <> V.I_math -> Some k
                | Some V.I_math, Some k when k <> V.I_math -> Some k
                | Some k1, Some k2 when k1 = k2 && k1 <> V.I_math -> Some k1
                | Some k1, Some k2 when k1 <> V.I_math && k2 <> V.I_math ->
                  Some (if V.int_bounds k1 < V.int_bounds k2 then k2 else k1)
                | _ -> None
              in
              match kind with
              | Some k -> (
                match V.int_bounds k with
                | Some (lo, hi) ->
                  let v = eval_m ~depth ctx.prog m e in
                  let fits =
                    match Dom.itv_of v with
                    | Some i ->
                      Dom.bound_cmp i.Dom.lo (Dom.Fin lo) >= 0
                      && Dom.bound_cmp i.Dom.hi (Dom.Fin hi) <= 0
                    | None -> false
                  in
                  if fits then
                    let opname =
                      match op with V.Add -> "+" | V.Sub -> "-" | _ -> "*"
                    in
                    emit ctx "VL044"
                      "%s arithmetic (%s) provably within %s range %s — overflow obligation is interval-vacuous"
                      (V.ty_to_string (V.TInt k))
                      opname
                      (V.ty_to_string (V.TInt k))
                      (Dom.to_string v)
                | None -> ())
              | None -> ())
            | _ -> ())
          () top)
      (V.stmt_exprs s)

(* --------------------------- statement exec -------------------------- *)

let rec exec_stmts ctx (st : Dom.t SM.t option) (stmts : V.stmt list) : Dom.t SM.t option =
  List.fold_left (exec_stmt ctx) st stmts

and exec_stmt ctx (st : Dom.t SM.t option) (s : V.stmt) : Dom.t SM.t option =
  match st with
  | None -> None (* unreachable; do not analyse or lint dead code *)
  | Some m -> (
    check_overflow_sites ctx m s;
    let p = ctx.prog in
    match s with
    | V.SLet (x, ty, e) ->
      Hashtbl.replace ctx.tenv x ty;
      Some (SM.add x (Dom.meet (eval_m ~depth p m e) (type_range ty)) m)
    | V.SAssign (x, e) ->
      let rng =
        match Hashtbl.find_opt ctx.tenv x with Some ty -> type_range ty | None -> Dom.Top
      in
      Some (SM.add x (Dom.meet (eval_m ~depth p m e) rng) m)
    | V.SIf (c, then_b, else_b) -> (
      match Dom.truth (eval_m ~depth p m c) with
      | Dom.Btrue ->
        emit ctx "VL043" "condition is constant (always true)";
        if else_b <> [] then emit ctx "VL040" "else-branch is unreachable (condition constant true)";
        exec_stmts ctx (assume ~depth p m c true) then_b
      | Dom.Bfalse ->
        emit ctx "VL043" "condition is constant (always false)";
        if then_b <> [] then emit ctx "VL040" "then-branch is unreachable (condition constant false)";
        exec_stmts ctx (assume ~depth p m c false) else_b
      | Dom.Bmaybe ->
        let st_t = exec_stmts ctx (assume ~depth p m c true) then_b in
        let st_e = exec_stmts ctx (assume ~depth p m c false) else_b in
        join_st st_t st_e)
    | V.SWhile { cond; invariants; decreases = _; body } -> exec_while ctx m cond invariants body
    | V.SCall (bind, f, args) -> (
      match List.find_opt (fun (fd : V.fndecl) -> String.equal fd.V.fname f) p.V.functions with
      | None -> Some m
      | Some callee ->
        (* Havoc the result and &mut arguments to their type ranges,
           then refine through the callee's ensures (the contract
           summary). *)
        let callee_env =
          try
            List.fold_left2
              (fun acc (prm : V.param) a ->
                SM.add prm.V.pname
                  (Dom.meet (eval_m ~depth p m a) (type_range prm.V.pty))
                  acc)
              SM.empty callee.V.params args
          with Invalid_argument _ -> SM.empty
        in
        let callee_env =
          match callee.V.ret with
          | Some (rname, rty) -> SM.add rname (type_range rty) callee_env
          | None -> callee_env
        in
        let callee_env =
          List.fold_left
            (fun acc e ->
              match assume ~depth p acc e true with Some acc' -> acc' | None -> acc)
            callee_env callee.V.ensures
        in
        let m =
          match (bind, callee.V.ret) with
          | Some x, Some (rname, rty) ->
            Hashtbl.replace ctx.tenv x rty;
            SM.add x (lookup callee_env rname) m
          | _ -> m
        in
        let m =
          try
            List.fold_left2
              (fun acc (prm : V.param) a ->
                match (prm.V.pmut, a) with
                | true, V.EVar x -> SM.add x (lookup callee_env prm.V.pname) acc
                | _ -> acc)
              m callee.V.params args
          with Invalid_argument _ -> m
        in
        Some m)
    | V.SAssert (e, _) ->
      (if Dom.truth (eval_m ~depth p m e) = Dom.Btrue then
         emit ctx "VL045" "assert is provable by interval/congruence analysis alone (rung 0)");
      assume ~depth p m e true
    | V.SAssume e -> assume ~depth p m e true
    | V.SReturn _ -> None)

and exec_while ctx m0 cond invariants body =
  let p = ctx.prog in
  (* Fixpoint over the loop head, *without* assuming the declared
     invariants: what the analyzer derives on its own distinguishes
     redundant invariants (VL041) from load-bearing ones.  All fixpoint
     iterations run silent; findings inside the body come from one
     final pass over the stable (narrowed) head state. *)
  let head = ref (Some m0) in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < 24 do
    incr iters;
    let body_in =
      match !head with Some hm -> assume ~depth p hm cond true | None -> None
    in
    let body_out = exec_stmts_silent ctx body_in body in
    let next = join_st (Some m0) body_out in
    if leq_st next !head then continue_ := false
    else head := if !iters <= 2 then next else widen_st !head next
  done;
  (match !head with
  | Some hm -> (
    match Dom.truth (eval_m ~depth p hm cond) with
    | Dom.Bfalse ->
      emit ctx "VL043" "loop condition is constant (always false)";
      if body <> [] then
        emit ctx "VL040" "loop body is unreachable (condition constant false)"
    | _ -> ())
  | None -> ());
  (* VL041: invariant conjuncts the fixpoint derives on its own. *)
  (match !head with
  | Some hm ->
    List.iteri
      (fun i inv ->
        if Dom.truth (eval_m ~depth p hm inv) = Dom.Btrue then
          emit ctx "VL041"
            "loop invariant conjunct %d is derivable by rung-0 analysis (dead weight)" i)
      invariants
  | None -> ());
  (* Invariant-guided narrowing: the declared invariants hold at every
     head visit, so meeting them back into the widened head is sound. *)
  let narrowed =
    List.fold_left
      (fun acc inv -> match acc with None -> None | Some am -> assume ~depth p am inv true)
      !head invariants
  in
  let body_in =
    match narrowed with Some nm -> assume ~depth p nm cond true | None -> None
  in
  (* One emitting pass over the body (nested VL04x findings), whose
     output also feeds the VL046 inductiveness probe. *)
  let body_out =
    match body_in with Some _ -> exec_stmts ctx body_in body | None -> None
  in
  (match body_in with
  | Some _ ->
    List.iteri
      (fun i inv ->
        let at_entry = Dom.truth (eval_m ~depth p m0 inv) = Dom.Btrue in
        let preserved =
          match body_out with
          | None -> true (* body never completes an iteration *)
          | Some bm -> Dom.truth (eval_m ~depth p bm inv) = Dom.Btrue
        in
        if at_entry && not preserved then
          emit ctx "VL046"
            "loop invariant conjunct %d holds on entry but is not inductive at rung 0 (solver must carry it)"
            i)
      invariants
  | None -> ());
  match narrowed with None -> None | Some nm -> assume ~depth p nm cond false

and exec_stmts_silent ctx st stmts =
  let saved = ctx.findings in
  let r = exec_stmts ctx st stmts in
  ctx.findings <- saved;
  r

(* ------------------------------ drivers ----------------------------- *)

let entry_state ctx =
  let fd = ctx.fn in
  List.iter (fun (prm : V.param) -> Hashtbl.replace ctx.tenv prm.V.pname prm.V.pty) fd.V.params;
  (match fd.V.ret with
  | Some (rname, rty) -> Hashtbl.replace ctx.tenv rname rty
  | None -> ());
  let m =
    List.fold_left
      (fun acc (prm : V.param) -> SM.add prm.V.pname (type_range prm.V.pty) acc)
      SM.empty fd.V.params
  in
  (* VL042 rides the same walk that builds the refined entry state. *)
  let m, _ =
    List.fold_left
      (fun (m, i) req ->
        (match m with
        | Some am when Dom.truth (eval_m ~depth ctx.prog am req) = Dom.Bfalse ->
          emit ctx "VL042" "requires conjunct %d is provably false (no caller can satisfy it)" i
        | _ -> ());
        let m' = match m with None -> None | Some am -> assume ~depth ctx.prog am req true in
        (match (m, m') with
        | Some _, None ->
          emit ctx "VL042" "requires conjunct %d contradicts the preceding conjuncts" i
        | _ -> ());
        (m', i + 1))
      (Some m, 0) fd.V.requires
  in
  m

let analyze_fn (p : V.program) (fd : V.fndecl) : finding list =
  let ctx = { prog = p; fn = fd; findings = []; tenv = Hashtbl.create 16 } in
  let entry = entry_state ctx in
  (match fd.V.body with
  | Some body when fd.V.fmode <> V.Spec -> ignore (exec_stmts ctx entry body)
  | _ -> ());
  List.rev ctx.findings

let analyze_program (p : V.program) : finding list =
  List.concat_map (analyze_fn p) p.V.functions
