(** Vflow: abstract-interpretation prescreen for verification
    conditions — rung 0 of the per-obligation escalation ladder.

    {!Dom} provides the interval × congruence × boolean domains,
    {!Prescreen} evaluates one VC (hypotheses + goal) over SMT terms,
    and {!Absint} runs the flow-sensitive fixpoint over VIR bodies
    (widening at loop heads, invariant-guided narrowing) that also
    powers the VL040–VL046 lint codes.

    The library sits below lib/core: it depends only on vbase, smt and
    vir_ast, so the driver can call it per-VC without a dependency
    cycle. *)

module Dom = Dom
module Prescreen = Prescreen
module Absint = Absint

val version : string
(** Analysis version string ("vflow/1"); salts Vcache fingerprints when
    prescreening is enabled, so prescreened and plain verdicts never
    alias. *)

val bench_schema : string
(** Schema tag of BENCH_analyze.json ("verus-analyze-bench/1"). *)

val validate_analyze_bench : Vbase.Json.t -> (unit, string) result
(** Structural validation of the prescreen-ablation bench document;
    rejects a zero total discharge count. *)
