module Json = Vbase.Json
module Rat = Vbase.Rat
module Bigint = Vbase.Bigint

let schema_version = "verus-cert/1"

type stats = {
  inputs : int;
  rup : int;
  euf : int;
  farkas : int;
  trichotomy : int;
  trusted : int;
}

type verdict = Checked of stats | Rejected of { code : string; reason : string }

exception Reject of string * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

(* --- JSON decoding ----------------------------------------------------- *)

let as_int = function Json.Int i -> i | _ -> reject "CK001" "expected an integer"
let as_string = function Json.String s -> s | _ -> reject "CK001" "expected a string"
let as_list = function Json.List l -> l | _ -> reject "CK001" "expected an array"

let member k j =
  match Json.member k j with Some v -> v | None -> reject "CK001" "missing field %S" k

let rat_of_string s =
  match String.index_opt s '/' with
  | None -> Rat.of_bigint (Bigint.of_string s)
  | Some i ->
    Rat.make
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let rat_of_json j = try rat_of_string (as_string j) with Failure _ -> reject "CK001" "bad rational"
let big_of_json j = try Bigint.of_string (as_string j) with Failure _ -> reject "CK001" "bad integer"

(* --- certificate structures ------------------------------------------- *)

(* Two [Interp] nodes with different labels denote distinct values (the
   labels encode kind and literal value); [Opaque] nodes carry no such
   knowledge and can only conflict through a violated disequality. *)
type node = Interp of string | Appn of int * int array | Opaque

type view = (int * Bigint.t) array * Rat.t

type lsem = { eq : (bool * int * int) option; views : view array }

type just =
  | Input of int
  | Rup of int array
  | Jeuf of int array
  | Jfarkas of (int * Rat.t * int) array
  | Jtri of int * int * int
  | Jtrusted of string

type step = { lits : int array; just : just }

let parse_node id j =
  match as_list j with
  | [ Json.String "a"; Json.Int f; Json.List ch ] ->
    let ch =
      Array.of_list
        (List.map
           (fun c ->
             let c = as_int c in
             if c < 0 || c >= id then reject "CK001" "node %d: child %d out of order" id c;
             c)
           ch)
    in
    if f < 0 then reject "CK001" "node %d: negative symbol" id;
    Appn (f, ch)
  | [ Json.String "i"; Json.String v ] -> Interp ("i:" ^ v)
  | [ Json.String "v"; Json.Int w; Json.String v ] -> Interp (Printf.sprintf "v:%d:%s" w v)
  | [ Json.String "t" ] -> Interp "t"
  | [ Json.String "f" ] -> Interp "f"
  | [ Json.String "o"; Json.Int _ ] -> Opaque
  | _ -> reject "CK001" "node %d: unrecognized shape" id

let parse_view j =
  match as_list j with
  | [ Json.List coeffs; bound ] ->
    let cs =
      List.map
        (fun c ->
          match as_list c with
          | [ v; x ] -> (as_int v, big_of_json x)
          | _ -> reject "CK001" "bad view coefficient")
        coeffs
    in
    let cs = List.sort (fun (a, _) (b, _) -> compare a b) cs in
    (Array.of_list cs, rat_of_json bound)
  | _ -> reject "CK001" "bad view"

let parse_lit n_nodes j =
  match as_list j with
  | [ Json.Int l; eq; Json.List views ] ->
    let eq =
      match eq with
      | Json.Null -> None
      | Json.List [ Json.Bool b; Json.Int x; Json.Int y ] ->
        if x < 0 || x >= n_nodes || y < 0 || y >= n_nodes then
          reject "CK001" "literal %d: equality over unknown nodes" l;
        Some (b, x, y)
      | _ -> reject "CK001" "literal %d: bad equality meaning" l
    in
    if l < 0 then reject "CK001" "negative literal";
    (l, { eq; views = Array.of_list (List.map parse_view views) })
  | _ -> reject "CK001" "bad literal entry"

let parse_just = function
  | Json.Int tag ->
    if tag < 0 || tag > 2 then reject "CK001" "unknown input tag %d" tag;
    Input tag
  | Json.List (Json.String "r" :: antes) -> Rup (Array.of_list (List.map as_int antes))
  | Json.List (Json.String "e" :: lits) -> Jeuf (Array.of_list (List.map as_int lits))
  | Json.List (Json.String "f" :: combo) ->
    Jfarkas
      (Array.of_list
         (List.map
            (fun c ->
              match as_list c with
              | [ Json.Int l; lam; Json.Int ix ] -> (l, rat_of_json lam, ix)
              | _ -> reject "CK001" "bad Farkas entry")
            combo))
  | Json.List [ Json.String "3"; Json.Int leq; Json.Int l1; Json.Int l2 ] -> Jtri (leq, l1, l2)
  | Json.List [ Json.String "t"; Json.String tag ] -> Jtrusted tag
  | _ -> reject "CK001" "unrecognized justification"

let parse_step j =
  match as_list j with
  | [ Json.List lits; just ] ->
    let lits =
      Array.of_list
        (List.map
           (fun l ->
             let l = as_int l in
             if l < 0 then reject "CK001" "negative literal in clause";
             l)
           lits)
    in
    { lits; just = parse_just just }
  | _ -> reject "CK001" "bad step shape"

(* --- step replay -------------------------------------------------------- *)

let neg l = l lxor 1
let clause_has lits l = Array.exists (fun x -> x = l) lits

(* The clause must contain the negation of every assumption the
   justification consumed — a clause that is a superset of a valid clause
   is valid, so covering is all that soundness needs. *)
let check_covers i lits assumptions =
  Array.iter
    (fun a ->
      if not (clause_has lits (neg a)) then
        reject "CK003" "step %d: clause lacks the negation of assumption literal %d" i a)
    assumptions

(* Restricted RUP: assuming the negations of [lits], unit propagation
   confined to the antecedent clauses must reach a conflict.  Tautological
   clauses are vacuously fine. *)
let check_rup steps i lits antes =
  if Array.exists (fun l -> clause_has lits (neg l)) lits then ()
  else begin
    let true_lits = Hashtbl.create 16 in
    Array.iter (fun l -> Hashtbl.replace true_lits (neg l) ()) lits;
    let is_true l = Hashtbl.mem true_lits l in
    let is_false l = Hashtbl.mem true_lits (neg l) in
    Array.iter
      (fun a -> if a < 0 || a >= i then reject "CK001" "step %d: bad antecedent %d" i a)
      antes;
    let conflict = ref false in
    let changed = ref true in
    while !changed && not !conflict do
      changed := false;
      Array.iter
        (fun a ->
          if not !conflict then begin
            let cl = steps.(a).lits in
            let satisfied = ref false in
            let unassigned = ref (-1) in
            let n_unassigned = ref 0 in
            Array.iter
              (fun l ->
                if is_true l then satisfied := true
                else if not (is_false l) then begin
                  incr n_unassigned;
                  unassigned := l
                end)
              cl;
            if not !satisfied then
              if !n_unassigned = 0 then conflict := true
              else if !n_unassigned = 1 && not (is_true !unassigned) then begin
                Hashtbl.replace true_lits !unassigned ();
                changed := true
              end
          end)
        antes
    done;
    if not !conflict then
      reject "CK002" "step %d: restricted unit propagation found no conflict" i
  end

let find_lsem lits_tbl i l =
  match Hashtbl.find_opt lits_tbl l with
  | Some s -> s
  | None -> reject "CK009" "step %d: literal %d has no atom-table entry" i l

(* Congruence-closure replay from the assumption literals: union the
   asserted equalities, close under congruence, and require a violated
   disequality or two distinct interpreted constants in one class. *)
let check_euf nodes lits_tbl i lits assumptions =
  check_covers i lits assumptions;
  let n = Array.length nodes in
  let parent = Array.init n (fun x -> x) in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then false
    else begin
      parent.(ra) <- rb;
      true
    end
  in
  let diseqs = ref [] in
  Array.iter
    (fun a ->
      match (find_lsem lits_tbl i a).eq with
      | None -> reject "CK009" "step %d: literal %d has no equality meaning" i a
      | Some (true, x, y) -> ignore (union x y)
      | Some (false, x, y) -> diseqs := (x, y) :: !diseqs)
    assumptions;
  let changed = ref true in
  while !changed do
    changed := false;
    let sigs = Hashtbl.create 64 in
    Array.iteri
      (fun id nd ->
        match nd with
        | Appn (f, ch) -> (
          let key = (f, Array.to_list (Array.map find ch)) in
          match Hashtbl.find_opt sigs key with
          | Some other -> if union id other then changed := true
          | None -> Hashtbl.add sigs key id)
        | _ -> ())
      nodes
  done;
  let distinct_consts () =
    let label_of_root = Hashtbl.create 16 in
    let bad = ref false in
    Array.iteri
      (fun id nd ->
        match nd with
        | Interp s -> (
          let r = find id in
          match Hashtbl.find_opt label_of_root r with
          | Some s' -> if s' <> s then bad := true
          | None -> Hashtbl.add label_of_root r s)
        | _ -> ())
      nodes;
    !bad
  in
  if not (List.exists (fun (x, y) -> find x = find y) !diseqs || distinct_consts ()) then
    reject "CK004" "step %d: congruence replay reached no contradiction" i

(* Farkas: the cited views, scaled by strictly positive multipliers, must
   cancel every variable and sum the bounds to a negative constant. *)
let check_farkas lits_tbl i lits combo =
  if Array.length combo = 0 then reject "CK005" "step %d: empty Farkas combination" i;
  check_covers i lits (Array.map (fun (l, _, _) -> l) combo);
  let acc = Hashtbl.create 16 in
  let bound = ref Rat.zero in
  Array.iter
    (fun (l, lam, ix) ->
      if Rat.sign lam <= 0 then
        reject "CK005" "step %d: non-positive multiplier %s" i (Rat.to_string lam);
      let s = find_lsem lits_tbl i l in
      if ix < 0 || ix >= Array.length s.views then
        reject "CK009" "step %d: literal %d has no view %d" i l ix;
      let coeffs, b = s.views.(ix) in
      Array.iter
        (fun (v, c) ->
          let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt acc v) in
          Hashtbl.replace acc v (Rat.add prev (Rat.mul lam (Rat.of_bigint c))))
        coeffs;
      bound := Rat.add !bound (Rat.mul lam b))
    combo;
  Hashtbl.iter
    (fun v s ->
      if not (Rat.is_zero s) then reject "CK005" "step %d: variable %d does not cancel" i v)
    acc;
  if Rat.sign !bound >= 0 then
    reject "CK005" "step %d: combined bound %s is not negative" i (Rat.to_string !bound)

let view_eq ((c1, b1) : view) ((c2, b2) : view) =
  Rat.equal b1 b2
  && Array.length c1 = Array.length c2
  && Array.for_all2 (fun (v1, x1) (v2, x2) -> v1 = v2 && Bigint.equal x1 x2) c1 c2

let view_neg ((c, b) : view) : view = (Array.map (fun (v, x) -> (v, Bigint.neg x)) c, Rat.neg b)

(* Trichotomy [eq \/ lt1 \/ lt2]: some bound pair (f, d) / (-f, -d) must
   appear in the equality's views, with (-f, -d) among the views of the
   negated first strict inequality and (f, d) among those of the negated
   second — then ~eq /\ ~lt1 /\ ~lt2 pins f.x to exactly d while denying
   it, which is contradictory.  Soundness leans on the atom table giving
   the equality's views exactly (see DESIGN.md). *)
let check_tri lits_tbl i lits (leq, l1, l2) =
  List.iter
    (fun l ->
      if not (clause_has lits l) then reject "CK003" "step %d: clause lacks literal %d" i l)
    [ leq; l1; l2 ];
  let views l = (find_lsem lits_tbl i l).views in
  let veq = views leq in
  let v1 = views (neg l1) in
  let v2 = views (neg l2) in
  let mem w vs = Array.exists (view_eq w) vs in
  let ok =
    Array.exists
      (fun w ->
        let nw = view_neg w in
        mem w veq && mem nw veq && mem nw v1 && mem w v2)
      veq
  in
  if not ok then reject "CK006" "step %d: no exact (f, d) / (-f, -d) bound pair" i

(* --- whole-certificate replay ------------------------------------------ *)

let check_smt j =
  let nodes =
    Array.of_list (List.mapi parse_node (as_list (member "nodes" j)))
  in
  let lits_tbl = Hashtbl.create 64 in
  List.iter
    (fun lj ->
      let l, s = parse_lit (Array.length nodes) lj in
      Hashtbl.replace lits_tbl l s)
    (as_list (member "lits" j));
  let steps = Array.of_list (List.map parse_step (as_list (member "steps" j))) in
  let empty = as_int (member "empty" j) in
  let st = ref { inputs = 0; rup = 0; euf = 0; farkas = 0; trichotomy = 0; trusted = 0 } in
  Array.iteri
    (fun i step ->
      match step.just with
      | Input _ -> st := { !st with inputs = !st.inputs + 1 }
      | Rup antes ->
        check_rup steps i step.lits antes;
        st := { !st with rup = !st.rup + 1 }
      | Jeuf assumptions ->
        check_euf nodes lits_tbl i step.lits assumptions;
        st := { !st with euf = !st.euf + 1 }
      | Jfarkas combo ->
        check_farkas lits_tbl i step.lits combo;
        st := { !st with farkas = !st.farkas + 1 }
      | Jtri (leq, l1, l2) ->
        check_tri lits_tbl i step.lits (leq, l1, l2);
        st := { !st with trichotomy = !st.trichotomy + 1 }
      | Jtrusted tag ->
        if tag = "" then reject "CK001" "step %d: empty trusted tag" i;
        st := { !st with trusted = !st.trusted + 1 })
    steps;
  if empty < 0 || empty >= Array.length steps then
    reject "CK007" "no step derives the empty clause";
  if Array.length steps.(empty).lits <> 0 then
    reject "CK007" "terminal step %d is not the empty clause" empty;
  !st

(* --- Gröbner cofactor identities --------------------------------------- *)

(* Polynomials over named variables with rational coefficients; monomials
   are sorted (var, exponent>0) lists.  The identity checked is
   [target = sum_i cofactor_i * gen_i], by exact arithmetic. *)
module P = struct
  type mono = (string * int) list

  let mono_norm (m : mono) : mono =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (v, e) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
        Hashtbl.replace tbl v (prev + e))
      m;
    Hashtbl.fold (fun v e acc -> if e = 0 then acc else (v, e) :: acc) tbl []
    |> List.sort compare

  let mono_mul a b = mono_norm (a @ b)

  type t = (mono, Rat.t) Hashtbl.t

  let add_term (p : t) c m =
    let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt p m) in
    let c = Rat.add prev c in
    if Rat.is_zero c then Hashtbl.remove p m else Hashtbl.replace p m c

  let add_mul_into (acc : t) (a : (Rat.t * mono) list) (b : (Rat.t * mono) list) =
    List.iter
      (fun (ca, ma) ->
        List.iter (fun (cb, mb) -> add_term acc (Rat.mul ca cb) (mono_mul ma mb)) b)
      a
end

let parse_poly j =
  List.map
    (fun t ->
      match as_list t with
      | [ c; Json.List mono ] ->
        let m =
          List.map
            (fun vm ->
              match as_list vm with
              | [ Json.String v; Json.Int e ] ->
                if e <= 0 then reject "CK001" "non-positive exponent" else (v, e)
              | _ -> reject "CK001" "bad monomial")
            mono
        in
        (rat_of_json c, m)
      | _ -> reject "CK001" "bad polynomial term")
    (as_list j)

let check_groebner j =
  let target = parse_poly (member "target" j) in
  let gens = List.map parse_poly (as_list (member "gens" j)) in
  let cofactors = List.map parse_poly (as_list (member "cofactors" j)) in
  if List.length gens <> List.length cofactors then
    reject "CK001" "generator/cofactor count mismatch";
  let acc = Hashtbl.create 32 in
  List.iter2 (fun g c -> P.add_mul_into acc c g) gens cofactors;
  (* acc - target must vanish. *)
  List.iter (fun (c, m) -> P.add_term acc (Rat.neg c) (P.mono_norm m)) target;
  if Hashtbl.length acc <> 0 then
    reject "CK008" "cofactor combination does not reproduce the target";
  { inputs = 0; rup = 0; euf = 0; farkas = 0; trichotomy = 0; trusted = 0 }

(* --- entry points ------------------------------------------------------- *)

let check j =
  try
    (match member "schema" j with
    | Json.String s when s = schema_version -> ()
    | Json.String s -> reject "CK001" "unknown schema %S" s
    | _ -> reject "CK001" "bad schema field");
    let stats =
      match as_string (member "kind" j) with
      | "smt" -> check_smt j
      | "groebner" -> check_groebner j
      | "trusted" ->
        if as_string (member "tag" j) = "" then reject "CK001" "empty trusted tag";
        { inputs = 0; rup = 0; euf = 0; farkas = 0; trichotomy = 0; trusted = 1 }
      | k -> reject "CK001" "unknown certificate kind %S" k
    in
    Checked stats
  with Reject (code, reason) -> Rejected { code; reason }

let check_string s =
  match Json.of_string s with
  | Error e -> Rejected { code = "CK001"; reason = "JSON parse error: " ^ e }
  | Ok j -> check j

let verdict_to_string = function
  | Checked s ->
    Printf.sprintf "checked (%d input, %d rup, %d euf, %d farkas, %d trichotomy, %d trusted)"
      s.inputs s.rup s.euf s.farkas s.trichotomy s.trusted
  | Rejected { code; reason } -> Printf.sprintf "rejected %s: %s" code reason
