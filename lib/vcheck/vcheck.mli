(** The independent proof-certificate checker.

    This library is the replay kernel of the certification pipeline: the
    solver stack ([Smt.Cert]) emits a certificate with every [Unsat]
    verdict, and this module re-derives the contradiction from nothing but
    the certificate's own JSON — it deliberately does not link against the
    solver (its dune [libraries] stanza names [vbase] only), so a bug in
    the CDCL core, the congruence closure or the simplex cannot also hide
    in the checker that vouches for it.

    What is replayed, per step kind of a ["kind": "smt"] certificate:
    - input steps (Tseitin, quantifier instances, bit-blasting) are
      axioms of the propositional abstraction — trusted by construction;
    - resolution/strengthening steps are checked by {e restricted RUP}:
      assuming the negation of the derived clause, unit propagation
      confined to the step's listed antecedents must reach a conflict;
    - EUF steps re-run congruence closure over the certificate's term
      graph from the step's assumption literals and must reach a violated
      disequality or merge two distinct interpreted constants;
    - Farkas steps re-sum the cited bound views with their multipliers
      and must cancel every variable and leave a negative constant;
    - trichotomy steps ([a = b \/ a < b \/ b < a]) match the equality's
      exact bound pair against the negated strict inequalities;
    - trusted steps (branch-and-bound unions, gcd elimination, modes that
      bypass the ground solver) are counted but taken on faith.

    The residual trusted computing base is documented in DESIGN.md: this
    kernel, the JSON parser, bignum arithmetic, and the certificate's
    atom table (the map from SAT literals to theory meanings). *)

(** Replay counts per step kind; the profile of where the proof's weight
    sits, and how much of it was replayed vs. trusted. *)
type stats = {
  inputs : int;  (** input clauses (Tseitin / instances / bit-blasting) *)
  rup : int;  (** resolution steps checked by restricted RUP *)
  euf : int;  (** congruence-closure replays *)
  farkas : int;  (** Farkas-combination checks *)
  trichotomy : int;  (** integer trichotomy lemma checks *)
  trusted : int;  (** steps taken on faith (tagged by the emitter) *)
}

(** Outcome of a replay.  Every rejection carries a stable [CK0xx] code
    (see {!val:check}) and a human-readable reason naming the offending
    step. *)
type verdict = Checked of stats | Rejected of { code : string; reason : string }

val schema_version : string
(** The certificate schema this kernel replays ([verus-cert/1]).  Kept as
    an independent literal — the checker must not import the emitter's
    constant — and cross-checked for equality by the test suite. *)

val check : Vbase.Json.t -> verdict
(** Replay a certificate.  Rejection codes:
    - [CK001] — malformed certificate (bad JSON shape, dangling ids,
      forward antecedent references, unknown schema/kind/tag);
    - [CK002] — restricted unit propagation failed to derive a conflict;
    - [CK003] — a step's clause does not cover the negated assumptions of
      its theory justification;
    - [CK004] — congruence-closure replay reached no contradiction;
    - [CK005] — Farkas combination does not cancel, has a non-positive
      multiplier, or leaves a non-negative bound;
    - [CK006] — trichotomy views do not form an exact [(f, d) / (-f, -d)]
      bound pair;
    - [CK007] — missing or non-empty terminal clause;
    - [CK008] — Gröbner cofactor identity does not reproduce the target;
    - [CK009] — a cited literal lacks its atom-table meaning or view. *)

val check_string : string -> verdict
(** Parse a JSON document and {!check} it ([CK001] on parse errors). *)

val verdict_to_string : verdict -> string
(** One-line rendering, e.g. ["checked (12 rup, 3 euf, ...)"] or
    ["rejected CK002: ..."]. *)
