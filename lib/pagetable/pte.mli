(** x86-64 page-table entry bit packing.

    Entries pack flags and a frame address into one 64-bit word — the §4.2.3
    idiom whose reasoning needs [by(bit_vector)].  {!Pagetable_proofs} runs
    the corresponding bit-vector obligations through the verifier; this
    module is the executable packing/unpacking those lemmas are about. *)

type flags = { present : bool; writable : bool; user : bool }

val pack : flags -> frame:int -> int64
(** [frame] is the physical frame number (address = frame * 4096); must fit
    in 40 bits. *)

val unpack : int64 -> flags * int
val is_present : int64 -> bool
val frame_of : int64 -> int
val empty : int64

val index : level:int -> int -> int
(** [index ~level va]: the 9-bit table index of [va] at [level] (4 is the
    root); [(va lsr (12 + 9*(level-1))) land 511]. *)
