type t = { mem : Phys_mem.t; root : int }

let create mem = { mem; root = Phys_mem.alloc_frame mem }

let entry_pa frame idx = (frame * Phys_mem.frame_size) + (8 * idx)

let next_table_alloc t frame idx =
  let pa = entry_pa frame idx in
  let e = Phys_mem.read_word t.mem pa in
  if Pte.is_present e then Pte.frame_of e
  else begin
    let fresh = Phys_mem.alloc_frame t.mem in
    Phys_mem.write_word t.mem pa
      (Pte.pack { present = true; writable = true; user = false } ~frame:fresh);
    fresh
  end

let map4k t ~va ~frame ~writable =
  let l3 = next_table_alloc t t.root (Pte.index ~level:4 va) in
  let l2 = next_table_alloc t l3 (Pte.index ~level:3 va) in
  let l1 = next_table_alloc t l2 (Pte.index ~level:2 va) in
  let pa = entry_pa l1 (Pte.index ~level:1 va) in
  if Pte.is_present (Phys_mem.read_word t.mem pa) then Error "already mapped"
  else begin
    Phys_mem.write_word t.mem pa (Pte.pack { present = true; writable; user = true } ~frame);
    Ok ()
  end

let unmap4k t ~va =
  let rec walk frame level =
    let pa = entry_pa frame (Pte.index ~level va) in
    let e = Phys_mem.read_word t.mem pa in
    if not (Pte.is_present e) then Error "not mapped"
    else if level = 1 then begin
      Phys_mem.write_word t.mem pa Pte.empty;
      Ok ()
    end
    else walk (Pte.frame_of e) (level - 1)
  in
  walk t.root 4

let translate t va =
  let rec walk frame level =
    let e = Phys_mem.read_word t.mem (entry_pa frame (Pte.index ~level va)) in
    if not (Pte.is_present e) then None
    else if level = 1 then Some ((Pte.frame_of e * Phys_mem.frame_size) + (va land 0xFFF))
    else walk (Pte.frame_of e) (level - 1)
  in
  walk t.root 4
