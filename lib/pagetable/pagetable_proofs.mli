(** The page table's low-level proof obligations, discharged with the §3.3
    custom automation: bit-vector lemmas about entry packing and index
    extraction ([by(bit_vector)]), arithmetic lemmas about frame layout
    ([by(nonlinear_arith)] / [by(integer_ring)]), and ground index
    computations ([by(compute)]).

    This is the executable counterpart of the paper's report that the page
    table invokes the bit-vector, nonlinear and proof-by-computation modes
    62, 39 and 11 times: the lemma battery here is what the implementation
    in {!Impl}/{!Pte} relies on. *)

type obligation = { name : string; mode : string; outcome : Verus.Modes.outcome }

val run : unit -> obligation list
(** Discharge the whole battery; [mode] names the §3.3 mode used. *)

val all_proved : obligation list -> bool

val count_by_mode : obligation list -> (string * int) list
(** Obligation counts per mode — the analogue of the paper's
    62/39/11 usage statistics. *)
