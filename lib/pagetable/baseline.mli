(** The unverified reference page table (the paper compares against the
    NrOS page table, §4.2.3/Figure 12): same mapping semantics, but never
    reclaims emptied directories and skips defensive checks — which is
    exactly why its unmap is faster. *)

type t

val create : Phys_mem.t -> t
(** A fresh root directory on the given physical memory. *)

val map4k : t -> va:int -> frame:int -> writable:bool -> (unit, string) result
(** Map one 4 KiB page, allocating intermediate directories as needed. *)

val unmap4k : t -> va:int -> (unit, string) result
(** Clear the leaf entry; never reclaims emptied directories. *)

val translate : t -> int -> int option
(** Software page walk: virtual address to physical, [None] if unmapped. *)
