module T = Smt.Term
module S = Smt.Sort
module B = Vbase.Bigint

type obligation = { name : string; mode : string; outcome : Verus.Modes.outcome }

let u64c name = T.const (T.Sym.declare ("pt." ^ name) [] S.Int)

(* The uninterpreted bounded bit operations the default encoding uses;
   by(bit_vector) reinterprets them as real BV operations. *)
let band a b = T.app (T.Sym.declare "u64.and" [ S.Int; S.Int ] S.Int) [ a; b ]
let bor a b = T.app (T.Sym.declare "u64.or" [ S.Int; S.Int ] S.Int) [ a; b ]
let bshr a k = T.app (T.Sym.declare "u64.shr" [ S.Int; S.Int ] S.Int) [ a; T.int_of k ]
let bshl a k = T.app (T.Sym.declare "u64.shl" [ S.Int; S.Int ] S.Int) [ a; T.int_of k ]
let i = T.int_of
let addr_mask = T.int_lit (B.of_string "4503599627370495" |> fun m -> B.mul m (B.of_int 4096))
(* 0x000FFFFFFFFFF000 = (2^40 - 1) * 4096 *)

let bv name goal = (name, "bit_vector", fun () -> Verus.Modes.prove_bit_vector goal)
let nl name ?hyps goal = (name, "nonlinear_arith", fun () -> Verus.Modes.prove_nonlinear ?hyps goal)
let ring name goal = (name, "integer_ring", fun () -> Verus.Modes.prove_integer_ring goal)

let obligations () =
  let x = u64c "x" and a = u64c "a" and f = u64c "f" in
  let off = u64c "off" and f1 = u64c "f1" and f2 = u64c "f2" in
  let idx = u64c "idx" and va = u64c "va" in
  [
    (* --- bit-vector lemmas (entry packing / index extraction) --- *)
    bv "index fits in 9 bits: (x >> 12) & 511 <= 511"
      (T.le (band (bshr x 12) (i 511)) (i 511));
    bv "paper 3.3: x & 511 == x % 512"
      (T.eq (band x (i 511)) (T.imod x (i 512)));
    bv "pack/unpack roundtrip: ((f << 12) & M) >> 12 == f when f < 2^40"
      (T.implies
         (T.lt f (T.int_lit (B.pow B.two 40)))
         (T.eq (bshr (band (bshl f 12) addr_mask) 12) f));
    bv "flag bits stay clear of the address mask"
      (T.implies
         (T.eq (band a addr_mask) a)
         (T.eq (band (bor a (i 1)) addr_mask) a));
    bv "setting flags preserves extracted address"
      (T.eq (band (bor (band x addr_mask) (i 7)) addr_mask) (band x addr_mask));
    bv "offset extraction: va & 4095 < 4096" (T.lt (band va (i 4095)) (i 4096));
    bv "aligned address has zero offset: (x & ~4095) & 4095 == 0"
      (T.eq (band (band x (T.int_lit (B.sub (B.pow B.two 64) (B.of_int 4096)))) (i 4095)) (i 0));
    bv "level-1 index: (va >> 12) % 512 == (va >> 12) & 511"
      (T.eq (T.imod (bshr va 12) (i 512)) (band (bshr va 12) (i 511)));
    (* --- nonlinear / layout lemmas --- *)
    nl "entry address in frame: idx < 512 ==> 8*idx < 4096"
      (T.implies
         (T.and_ [ T.ge idx (i 0); T.lt idx (i 512) ])
         (T.lt (T.mul (i 8) idx) (i 4096)));
    nl "frames do not overlap"
      (T.implies
         (T.and_ [ T.lt f1 f2; T.ge off (i 0); T.lt off (i 4096) ])
         (T.lt (T.add [ T.mul f1 (i 4096); off ]) (T.mul f2 (i 4096))));
    nl "paper 3.3 nonlinear example"
      (T.implies
         (T.gt (u64c "q") (i 2))
         (T.ge
            (T.mul (T.add [ T.mul a a; i 1 ]) (u64c "q"))
            (T.mul (T.add [ T.mul a a; i 1 ]) (i 2))));
    nl "squares are nonnegative" (T.ge (T.mul a a) (i 0));
    nl "frame base monotone"
      (T.implies (T.le f1 f2) (T.le (T.mul f1 (i 4096)) (T.mul f2 (i 4096))));
    (* --- ring congruences --- *)
    ring "frame base is page aligned: f*4096 % 4096 == 0"
      (T.eq (T.imod (T.mul f (i 4096)) (i 4096)) (i 0));
    ring "page-aligned difference: a%4096==0 && b%4096==0 ==> (b-a)%4096==0"
      (T.implies
         (T.and_
            [ T.eq (T.imod a (i 4096)) (i 0); T.eq (T.imod x (i 4096)) (i 0) ])
         (T.eq (T.imod (T.sub x a) (i 4096)) (i 0)));
  ]

(* Ground index computations, by(compute): evaluated against a VIR spec of
   the index function. *)
let compute_obligations () =
  let open Verus.Vir in
  let spec_index =
    {
      fname = "pt_index";
      fmode = Spec;
      params =
        [
          { pname = "va"; pty = TInt I_math; pmut = false };
          { pname = "level"; pty = TInt I_math; pmut = false };
        ];
      ret = Some ("result", TInt I_math);
      requires = [];
      ensures = [];
      body = None;
      spec_body =
        Some
          (EBinop
             ( Mod,
               EBinop
                 ( Div,
                   v "va",
                   EIte
                     ( v "level" ==: i 1,
                       i 4096,
                       EIte
                         ( v "level" ==: i 2,
                           i (4096 * 512),
                           EIte (v "level" ==: i 3, i (4096 * 512 * 512), i (4096 * 512 * 512 * 512)) ) ) ),
               i 512 ));
      attrs = [];
    }
  in
  let prog = { datatypes = []; functions = [ spec_index ] } in
  let va = 0x0000_7FFF_DEAD_B000 in
  List.map
    (fun level ->
      let expected = Pte.index ~level va in
      {
        name = Printf.sprintf "compute: index level %d of %#x = %d" level va expected;
        mode = "compute";
        outcome =
          Verus.Modes.prove_compute prog
            (Verus.Vir.ECall ("pt_index", [ Verus.Vir.EInt va; Verus.Vir.EInt level ]) ==: Verus.Vir.EInt expected);
      })
    [ 1; 2; 3; 4 ]

let run () =
  List.map
    (fun (name, mode, f) -> { name; mode; outcome = f () })
    (obligations ())
  @ compute_obligations ()

let all_proved obs = List.for_all (fun o -> o.outcome = Verus.Modes.Proved) obs

let count_by_mode obs =
  List.fold_left
    (fun acc o ->
      let c = match List.assoc_opt o.mode acc with Some n -> n | None -> 0 in
      (o.mode, c + 1) :: List.remove_assoc o.mode acc)
    [] obs
