(** The verified-port page table: 4-level x86-64 tree over simulated
    physical memory, with map/unmap of 4 KiB frames.

    [unmap] reclaims page directories that become empty — the design choice
    responsible for the paper's Figure 12 unmap slowdown; [create
    ~reclaim:false] is the paper's "Unmap (Verif.*)" variant with
    reclamation disabled.  {!translate} is the trusted MMU walker
    specification: correctness of map/unmap is stated (and tested) against
    it. *)

type t

val create : ?reclaim:bool -> Phys_mem.t -> t
val root_frame : t -> int

val map4k : t -> va:int -> frame:int -> writable:bool -> (unit, string) result
(** Fails if already mapped or va is out of canonical range. *)

val unmap4k : t -> va:int -> (unit, string) result
(** Fails if not mapped. *)

val translate : t -> int -> int option
(** The MMU specification walker: physical address for a virtual one. *)

val table_frames : t -> int
(** Frames currently used by page-table nodes (excludes mapped frames);
    exposes reclamation behaviour to tests. *)
