let frame_size = 4096
let words_per_frame = 512

type t = {
  frames : (int, int64 array) Hashtbl.t; (* frame number -> contents *)
  mutable free_list : int list;
  mutable next_fresh : int;
  limit : int;
}

let create ?(frames = 65536) () =
  { frames = Hashtbl.create 1024; free_list = []; next_fresh = 1; limit = frames }

let alloc_frame t =
  let n =
    match t.free_list with
    | n :: rest ->
      t.free_list <- rest;
      n
    | [] ->
      if t.next_fresh >= t.limit then failwith "Phys_mem: out of frames";
      let n = t.next_fresh in
      t.next_fresh <- n + 1;
      n
  in
  Hashtbl.replace t.frames n (Array.make words_per_frame 0L);
  n

let free_frame t n =
  if not (Hashtbl.mem t.frames n) then invalid_arg "Phys_mem.free_frame: not allocated";
  Hashtbl.remove t.frames n;
  t.free_list <- n :: t.free_list

let locate t pa =
  if pa land 7 <> 0 then invalid_arg "Phys_mem: unaligned access";
  let frame = pa / frame_size and off = pa mod frame_size / 8 in
  match Hashtbl.find_opt t.frames frame with
  | Some a -> (a, off)
  | None -> invalid_arg (Printf.sprintf "Phys_mem: access to unallocated frame %d" frame)

let read_word t pa =
  let a, off = locate t pa in
  a.(off)

let write_word t pa v =
  let a, off = locate t pa in
  a.(off) <- v

let allocated_frames t = Hashtbl.length t.frames
