type flags = { present : bool; writable : bool; user : bool }

let bit_present = 0x1L
let bit_writable = 0x2L
let bit_user = 0x4L
let addr_mask = 0x000F_FFFF_FFFF_F000L (* bits 12..51 *)

let empty = 0L

let pack f ~frame =
  if frame < 0 || frame >= 1 lsl 40 then invalid_arg "Pte.pack: frame out of range";
  let addr = Int64.shift_left (Int64.of_int frame) 12 in
  let v = Int64.logand addr addr_mask in
  let v = if f.present then Int64.logor v bit_present else v in
  let v = if f.writable then Int64.logor v bit_writable else v in
  if f.user then Int64.logor v bit_user else v

let is_present v = Int64.logand v bit_present <> 0L
let frame_of v = Int64.to_int (Int64.shift_right_logical (Int64.logand v addr_mask) 12)

let unpack v =
  ( {
      present = is_present v;
      writable = Int64.logand v bit_writable <> 0L;
      user = Int64.logand v bit_user <> 0L;
    },
    frame_of v )

let index ~level va =
  if level < 1 || level > 4 then invalid_arg "Pte.index: level";
  (va lsr (12 + (9 * (level - 1)))) land 511
