(** Simulated physical memory for the page-table case study (§4.2.3).

    Plays the role of the paper's trusted hardware/memory spec: 4 KiB
    frames of 64-bit words, a frame allocator, and word-granularity
    reads/writes at physical addresses.  The page-table implementation owns
    the frames it allocates — the encapsulation the paper's MMU spec
    provides via ghost ownership. *)

type t

val frame_size : int
(** Bytes per frame: 4096. *)

val words_per_frame : int
(** 64-bit words per frame: 512. *)

val create : ?frames:int -> unit -> t
(** Physical memory with an allocator over [frames] frames (default 65536). *)

val alloc_frame : t -> int
(** Returns the frame number of a zeroed 4 KiB frame; raises [Failure] when
    exhausted. *)

val free_frame : t -> int -> unit
(** Raises [Invalid_argument] on double-free or out-of-range frames. *)

val read_word : t -> int -> int64
(** [read_word mem pa]: [pa] must be 8-byte aligned and inside an
    allocated frame. *)

val write_word : t -> int -> int64 -> unit

val allocated_frames : t -> int
