type t = {
  mem : Phys_mem.t;
  root : int; (* frame number of the L4 table *)
  reclaim : bool;
  mutable table_count : int; (* page-table node frames, including root *)
}

let create ?(reclaim = true) mem =
  let root = Phys_mem.alloc_frame mem in
  { mem; root; reclaim; table_count = 1 }

let root_frame t = t.root
let table_frames t = t.table_count

let canonical va = va >= 0 && va < 1 lsl 48 && va land 0xFFF = 0

let entry_pa frame idx = (frame * Phys_mem.frame_size) + (8 * idx)

(* Walk down one level; allocate the next table when absent (map path). *)
let next_table_alloc t frame idx =
  let pa = entry_pa frame idx in
  let e = Phys_mem.read_word t.mem pa in
  if Pte.is_present e then Pte.frame_of e
  else begin
    let fresh = Phys_mem.alloc_frame t.mem in
    t.table_count <- t.table_count + 1;
    Phys_mem.write_word t.mem pa
      (Pte.pack { present = true; writable = true; user = false } ~frame:fresh);
    fresh
  end

let map4k t ~va ~frame ~writable =
  if not (canonical va) then Error "non-canonical or unaligned va"
  else begin
    let l3 = next_table_alloc t t.root (Pte.index ~level:4 va) in
    let l2 = next_table_alloc t l3 (Pte.index ~level:3 va) in
    let l1 = next_table_alloc t l2 (Pte.index ~level:2 va) in
    let pa = entry_pa l1 (Pte.index ~level:1 va) in
    if Pte.is_present (Phys_mem.read_word t.mem pa) then Error "already mapped"
    else begin
      Phys_mem.write_word t.mem pa
        (Pte.pack { present = true; writable; user = true } ~frame);
      Ok ()
    end
  end

let table_empty t frame =
  let rec go i =
    i >= Phys_mem.words_per_frame
    || ((not (Pte.is_present (Phys_mem.read_word t.mem (entry_pa frame i)))) && go (i + 1))
  in
  go 0

let unmap4k t ~va =
  if not (canonical va) then Error "non-canonical or unaligned va"
  else begin
    (* Walk down without allocating, remembering the path. *)
    let walk frame level =
      let pa = entry_pa frame (Pte.index ~level va) in
      let e = Phys_mem.read_word t.mem pa in
      if Pte.is_present e then Some (Pte.frame_of e) else None
    in
    match walk t.root 4 with
    | None -> Error "not mapped"
    | Some l3 -> (
      match walk l3 3 with
      | None -> Error "not mapped"
      | Some l2 -> (
        match walk l2 2 with
        | None -> Error "not mapped"
        | Some l1 ->
          let pa = entry_pa l1 (Pte.index ~level:1 va) in
          if not (Pte.is_present (Phys_mem.read_word t.mem pa)) then Error "not mapped"
          else begin
            Phys_mem.write_word t.mem pa Pte.empty;
            (* Reclaim empty directories bottom-up (the Figure 12 cost). *)
            if t.reclaim then begin
              if table_empty t l1 then begin
                Phys_mem.write_word t.mem (entry_pa l2 (Pte.index ~level:2 va)) Pte.empty;
                Phys_mem.free_frame t.mem l1;
                t.table_count <- t.table_count - 1;
                if table_empty t l2 then begin
                  Phys_mem.write_word t.mem (entry_pa l3 (Pte.index ~level:3 va)) Pte.empty;
                  Phys_mem.free_frame t.mem l2;
                  t.table_count <- t.table_count - 1;
                  if table_empty t l3 then begin
                    Phys_mem.write_word t.mem (entry_pa t.root (Pte.index ~level:4 va)) Pte.empty;
                    Phys_mem.free_frame t.mem l3;
                    t.table_count <- t.table_count - 1
                  end
                end
              end
            end;
            Ok ()
          end))
  end

(* Trusted MMU walker: the specification map/unmap are judged against. *)
let translate t va =
  if va < 0 || va >= 1 lsl 48 then None
  else begin
    let rec walk frame level =
      let e = Phys_mem.read_word t.mem (entry_pa frame (Pte.index ~level va)) in
      if not (Pte.is_present e) then None
      else if level = 1 then Some ((Pte.frame_of e * Phys_mem.frame_size) + (va land 0xFFF))
      else walk (Pte.frame_of e) (level - 1)
    in
    walk t.root 4
  end
