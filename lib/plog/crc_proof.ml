open Verus.Vir

(* CRC-32 (reflected, IEEE): entry(i) = step applied 8 times to i, where
   step(c) = if c odd then (c / 2) xor 0xEDB88320 else c / 2.

   The xor with the polynomial is expressed arithmetically: both operands
   fit in 32 bits, and c/2 < 2^31 while the polynomial's bit pattern is
   fixed, so xor = a + b - 2*(a land b); to stay within the spec language we
   precompute per-bit.  Simpler: express step via the bitwise operators the
   VIR language has (u64 kinds). *)

let u64 = TInt I_u64

let crc_step =
  {
    fname = "crc_step";
    fmode = Spec;
    params = [ { pname = "c"; pty = u64; pmut = false } ];
    ret = Some ("result", u64);
    requires = [];
    ensures = [];
    body = None;
    spec_body =
      Some
        (EIte
           ( EBinop (BitAnd, v "c", i 1) ==: i 1,
             EBinop (BitXor, EBinop (Shr, v "c", i 1), i 0xEDB88320),
             EBinop (Shr, v "c", i 1) ));
    attrs = [];
  }

(* entry(i) = step^8(i), unrolled (spec functions are total; unrolling by 8
   mirrors the fixed byte width). *)
let crc_entry =
  let rec nest n e = if n = 0 then e else nest (n - 1) (ECall ("crc_step", [ e ])) in
  {
    fname = "crc_entry";
    fmode = Spec;
    params = [ { pname = "i"; pty = u64; pmut = false } ];
    ret = Some ("result", u64);
    requires = [];
    ensures = [];
    body = None;
    spec_body = Some (nest 8 (v "i"));
    attrs = [];
  }

let spec_program = { datatypes = []; functions = [ crc_step; crc_entry ] }

let table_entry i =
  (* The implementation's table entry as an unsigned int. *)
  Int32.to_int (Vbase.Crc32.table ()).(i) land 0xFFFFFFFF

let check_entry idx =
  Verus.Modes.prove_compute spec_program
    (ECall ("crc_entry", [ i idx ]) ==: i (table_entry idx))

let check_all () = List.init 256 (fun idx -> (idx, check_entry idx))

let all_proved results =
  List.for_all (fun (_, o) -> o = Verus.Modes.Proved) results
