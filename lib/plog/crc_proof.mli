(** The §3.3 proof-by-computation story, for real: the persistent log's
    CRC-32 implementation uses a 256-entry lookup table; the paper recounts
    abandoning a table-correctness proof in a prior project because guiding
    the solver through the polynomial arithmetic was excruciating, and
    solving it in Verus with [by(compute)].

    Here the table specification (8 conditional-xor steps of the reflected
    polynomial) is written as a VIR spec function, and each table entry is
    discharged by the compute-mode evaluator against {!Vbase.Crc32.table}. *)

val spec_program : Verus.Vir.program
(** Contains [crc_step] and [crc_entry] spec functions. *)

val check_entry : int -> Verus.Modes.outcome
(** [check_entry i]: proof that table entry [i] equals its specification. *)

val check_all : unit -> (int * Verus.Modes.outcome) list
(** All 256 entries. *)

val all_proved : (int * Verus.Modes.outcome) list -> bool
