(** The verified persistent circular log (§4.2.5): an implementation of an
    abstract infinite log (monotone [head]/[tail] virtual offsets) on a
    fixed region of persistent memory, with crash-atomic appends and
    CRC-protected metadata.

    Commit protocol: data is written and flushed first, then the inactive
    header slot is written with a bumped version and flushed — the flush of
    the header slot is the linearization/commit point, so a crash at any
    moment leaves a valid prefix.  Recovery picks the highest-version slot
    whose CRC validates; corrupted metadata is detected, not trusted.

    Styles: [`Latest] writes metadata/data in place (the paper's
    [Serializable]-trait version); [`Initial] stages every append through
    an intermediate copy (the first prototype whose Figure 14 throughput
    dip we reproduce); [`Pmdk] is the baseline: lock around appends and no
    CRCs, like [libpmemlog]. *)

type style = [ `Latest | `Initial | `Pmdk ]

type t

val header_bytes : int

val format : Pmem.t -> base:int -> len:int -> unit
(** Initialize an empty log in [base, base+len); flushes. *)

val attach : ?style:style -> Pmem.t -> base:int -> len:int -> (t, string) result
(** Recovery: validates header slots; [Error] when both are corrupt. *)

val append : t -> string -> (unit, string) result
(** [Error] when the payload does not fit in the free space. *)

val advance_head : t -> int -> (unit, string) result
(** Reclaim space up to the given virtual offset (synchronous). *)

val head : t -> int
val tail : t -> int
val capacity : t -> int

val read : t -> offset:int -> len:int -> (string, string) result
(** Read [len] bytes at virtual offset [offset] (must be within
    [head, tail)). *)
