(** Simulated byte-addressable persistent memory (the Optane device of
    §4.2.5).

    Writes land in a volatile view; {!flush} persists a range.  {!crash}
    discards everything unflushed — the adversary the log's recovery code
    must survive.  {!flip_bit} injects the media corruption that the CRC
    protection must detect. *)

type t

val create : ?faults:Vbase.Faultplan.t -> size:int -> unit -> t
(** [faults] arms the ["pmem.torn"] fault site: when it fires on a
    {!flush}, only a plan-drawn prefix of the flushed range reaches media
    (a torn / partial-line write) and power fails — every later flush is
    dropped until {!crash}.  Deterministic: the same plan seed tears the
    same flush at the same byte. *)

val size : t -> int

val write : t -> addr:int -> string -> unit
val read : t -> addr:int -> len:int -> string

val flush : t -> addr:int -> len:int -> unit
(** Persist the byte range (clwb+fence granularity is the whole range). *)

val crash : t -> unit
(** Revert the volatile view to the last persisted state (and lift any
    pending {!set_flush_budget}: the machine has rebooted). *)

val set_flush_budget : t -> int -> unit
(** Fault injection: only the next [n] flushes persist; later ones are
    silently dropped, as if power failed before their fence.  A subsequent
    {!crash} then reveals whatever prefix of the write sequence made it —
    the adversary for atomic-commit protocols. *)

val clear_flush_budget : t -> unit
(** Turn fault injection back off (flushes persist again). *)

val power_failed : t -> bool
(** [true] once the simulated power has failed — a torn write fired or a
    flush budget ran out — so no further flush can land.  Durable layers
    consult this after their commit flush: an append that "succeeded"
    after this point never reached media, and the host must treat itself
    as crashed rather than acknowledge it (the storm harness then calls
    {!crash} and runs recovery). *)

val flip_bit : t -> addr:int -> bit:int -> unit
(** Corrupt one persisted bit (and the volatile view with it). *)

val flushes : t -> int
val bytes_written : t -> int
