type t = {
  persistent : Bytes.t;
  volatile : Bytes.t;
  mutable flushes : int;
  mutable bytes_written : int;
  mutable flush_budget : int option;
      (* fault injection: when [Some n], only the next [n] flushes persist;
         later ones are silently dropped (the power cut the next crash()
         then simulates happened before their fence) *)
  faults : Vbase.Faultplan.t option;
      (* plan-driven fault site "pmem.torn": when it fires on a flush, only
         a prefix of the range persists (a torn / partial-line write) and
         power fails — every later flush is dropped until crash() *)
}

let create ?faults ~size () =
  {
    persistent = Bytes.make size '\000';
    volatile = Bytes.make size '\000';
    flushes = 0;
    bytes_written = 0;
    flush_budget = None;
    faults;
  }

let size t = Bytes.length t.persistent

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.persistent then
    invalid_arg "Pmem: out of range"

let write t ~addr s =
  check t addr (String.length s);
  Bytes.blit_string s 0 t.volatile addr (String.length s);
  t.bytes_written <- t.bytes_written + String.length s

let read t ~addr ~len =
  check t addr len;
  Bytes.sub_string t.volatile addr len

let torn_fires t =
  match t.faults with
  | None -> false
  | Some plan -> Vbase.Faultplan.fires plan "pmem.torn"

let flush t ~addr ~len =
  check t addr len;
  (match t.flush_budget with
  | Some 0 -> () (* power already failed: the fence never lands *)
  | budget ->
    if torn_fires t then begin
      (* Torn write: power fails mid-flush.  Only a strict prefix of the
         range reaches media (cache lines retire in address order here;
         the prefix length is drawn from the plan so replays tear at the
         same byte), and no later flush can land either. *)
      let keep =
        match t.faults with
        | Some plan -> Vbase.Faultplan.draw plan "pmem.torn" (max 1 len)
        | None -> 0
      in
      Bytes.blit t.volatile addr t.persistent addr keep;
      t.flush_budget <- Some 0
    end
    else begin
      (match budget with Some n -> t.flush_budget <- Some (n - 1) | None -> ());
      Bytes.blit t.volatile addr t.persistent addr len
    end);
  t.flushes <- t.flushes + 1

let power_failed t = t.flush_budget = Some 0

let set_flush_budget t n =
  if n < 0 then invalid_arg "Pmem.set_flush_budget";
  t.flush_budget <- Some n

let clear_flush_budget t = t.flush_budget <- None

let crash t =
  t.flush_budget <- None;
  Bytes.blit t.persistent 0 t.volatile 0 (Bytes.length t.persistent)

let flip_bit t ~addr ~bit =
  check t addr 1;
  if bit < 0 || bit > 7 then invalid_arg "Pmem.flip_bit: bit";
  let f b =
    let c = Char.code (Bytes.get b addr) in
    Bytes.set b addr (Char.chr (c lxor (1 lsl bit)))
  in
  f t.persistent;
  f t.volatile

let flushes t = t.flushes
let bytes_written t = t.bytes_written
