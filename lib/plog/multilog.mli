(** Atomic appends to multiple logs (§4.2.5: "supports atomic appends to
    multiple separate logs").

    Each constituent log keeps its own data region; a shared commit header
    (version + every log's tail + CRC) makes a multi-append all-or-nothing:
    data for every log is written and flushed first, then one commit record
    flush publishes all the new tails. *)

type t

val format : Pmem.t -> base:int -> log_len:int -> logs:int -> unit
(** Initialize [logs] empty logs of [log_len] bytes each at [base]. *)

val attach : Pmem.t -> base:int -> log_len:int -> logs:int -> (t, string) result
(** Recover from a (possibly crashed) device: picks the newest commit
    header whose CRC validates. *)

val append_all : t -> string list -> (unit, string) result
(** One payload per log, committed atomically; [Error] when any log lacks
    space or the list length mismatches. *)

val tails : t -> int list
(** Current committed tail of each log. *)

val log_count : t -> int
val log_len : t -> int
(** Geometry, for callers (e.g. the IronKV durable layer's group commit)
    that must size batches against the remaining room. *)

val free_space : t -> int -> int
(** Bytes a single further append to the given log can still carry
    without hitting the no-wrap boundary. *)

val read : t -> log:int -> offset:int -> len:int -> (string, string) result
(** Read committed bytes back; [Error] outside the committed range. *)
