(* Layout: [commit header: 8 + 8*logs + 4 bytes, padded to 128]
           [log 0 data region][log 1 data region]...
   The commit header stores version, the tails of every log, and a CRC. *)

type t = {
  mem : Pmem.t;
  base : int;
  log_len : int; (* data bytes per log *)
  logs : int;
  mutable version : int;
  mutable tails : int array;
}

let header_len t = 8 + (8 * t.logs) + 4

let commit_addr t slot = t.base + (slot * 128)

let data_base t log = t.base + 256 + (log * t.log_len)

let put_u64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * (7 - i))) land 0xFF))
  done

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode_commit t ~version tails =
  let n = header_len t in
  let b = Bytes.make n '\000' in
  put_u64 b 0 version;
  Array.iteri (fun i tl -> put_u64 b (8 + (8 * i)) tl) tails;
  let crc = Vbase.Crc32.digest b 0 (n - 4) in
  for i = 0 to 3 do
    Bytes.set b (n - 4 + i) (Char.chr ((Int32.to_int crc lsr (8 * (3 - i))) land 0xFF))
  done;
  Bytes.to_string b

let decode_commit t s =
  let n = header_len t in
  if String.length s < n then None
  else begin
    let version = get_u64 s 0 in
    if version = 0 then None
    else begin
      let expect =
        let v = ref 0 in
        for i = 0 to 3 do
          v := (!v lsl 8) lor Char.code s.[n - 4 + i]
        done;
        !v
      in
      let got = Int32.to_int (Vbase.Crc32.digest (Bytes.of_string s) 0 (n - 4)) land 0xFFFFFFFF in
      if expect <> got then None
      else Some (version, Array.init t.logs (fun i -> get_u64 s (8 + (8 * i))))
    end
  end

let write_commit t =
  let v = t.version + 1 in
  let s = encode_commit t ~version:v t.tails in
  let addr = commit_addr t (v mod 2) in
  Pmem.write t.mem ~addr s;
  Pmem.flush t.mem ~addr ~len:(header_len t);
  t.version <- v

let format mem ~base ~log_len ~logs =
  let t = { mem; base; log_len; logs; version = 0; tails = Array.make logs 0 } in
  Pmem.write mem ~addr:(commit_addr t 0) (String.make 128 '\000');
  Pmem.flush mem ~addr:(commit_addr t 0) ~len:256;
  write_commit t

let attach mem ~base ~log_len ~logs =
  let t = { mem; base; log_len; logs; version = 0; tails = Array.make logs 0 } in
  let c0 = decode_commit t (Pmem.read mem ~addr:(commit_addr t 0) ~len:(header_len t)) in
  let c1 = decode_commit t (Pmem.read mem ~addr:(commit_addr t 1) ~len:(header_len t)) in
  match (c0, c1) with
  | None, None -> Error "no valid commit record"
  | Some (v, tl), None | None, Some (v, tl) ->
    t.version <- v;
    t.tails <- tl;
    Ok t
  | Some (v0, tl0), Some (v1, tl1) ->
    if v0 > v1 then begin
      t.version <- v0;
      t.tails <- tl0
    end
    else begin
      t.version <- v1;
      t.tails <- tl1
    end;
    Ok t

let append_all t payloads =
  if List.length payloads <> t.logs then Error "wrong number of payloads"
  else if
    List.exists2
      (fun p tl -> tl mod t.log_len + String.length p > t.log_len)
      payloads
      (Array.to_list t.tails)
  then Error "append does not fit (no wrap support in multilog data regions)"
  else begin
    List.iteri
      (fun i p ->
        if String.length p > 0 then begin
          let addr = data_base t i + (t.tails.(i) mod t.log_len) in
          Pmem.write t.mem ~addr p;
          Pmem.flush t.mem ~addr ~len:(String.length p)
        end)
      payloads;
    List.iteri (fun i p -> t.tails.(i) <- t.tails.(i) + String.length p) payloads;
    write_commit t;
    Ok ()
  end

let tails t = Array.to_list t.tails
let log_count t = t.logs
let log_len t = t.log_len

let free_space t log =
  if log < 0 || log >= t.logs then invalid_arg "Multilog.free_space: bad log index";
  t.log_len - (t.tails.(log) mod t.log_len)

let read t ~log ~offset ~len =
  if log < 0 || log >= t.logs then Error "bad log index"
  else if offset + len > t.tails.(log) then Error "read past tail"
  else Ok (Pmem.read t.mem ~addr:(data_base t log + (offset mod t.log_len)) ~len)
