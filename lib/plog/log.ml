type style = [ `Latest | `Initial | `Pmdk ]

let header_bytes = 128
let slot_bytes = 32

type t = {
  mem : Pmem.t;
  base : int;
  capacity : int; (* data bytes *)
  style : style;
  lock : Mutex.t; (* used by the `Pmdk style *)
  mutable head : int; (* virtual offsets, monotone *)
  mutable tail : int;
  mutable version : int;
}

(* --- header slots ----------------------------------------------------- *)

let put_u64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * (7 - i))) land 0xFF))
  done

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let put_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xFF))
  done

let get_u32 s off =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* Slot: version(8) head(8) tail(8) crc(4) pad(4).  [`Pmdk] writes crc 0
   and skips validation. *)
let encode_slot ~crc ~version ~head ~tail =
  let b = Bytes.make slot_bytes '\000' in
  put_u64 b 0 version;
  put_u64 b 8 head;
  put_u64 b 16 tail;
  if crc then begin
    let digest = Vbase.Crc32.digest b 0 24 in
    put_u32 b 24 (Int32.to_int digest land 0xFFFFFFFF)
  end;
  Bytes.to_string b

let decode_slot ~crc s =
  if String.length s <> slot_bytes then None
  else begin
    let version = get_u64 s 0 and head = get_u64 s 8 and tail = get_u64 s 16 in
    if version = 0 then None (* never written *)
    else if crc then begin
      let expect = get_u32 s 24 in
      let got = Int32.to_int (Vbase.Crc32.digest (Bytes.of_string s) 0 24) land 0xFFFFFFFF in
      if expect = got then Some (version, head, tail) else None
    end
    else Some (version, head, tail)
  end

let slot_addr t i = t.base + (i * slot_bytes)

let write_slot t =
  (* Write the inactive slot (version parity picks the slot), flush: this
     flush is the commit point. *)
  let v = t.version + 1 in
  let s = encode_slot ~crc:(t.style <> `Pmdk) ~version:v ~head:t.head ~tail:t.tail in
  let addr = slot_addr t (v mod 2) in
  Pmem.write t.mem ~addr s;
  Pmem.flush t.mem ~addr ~len:slot_bytes;
  t.version <- v

(* --- construction ----------------------------------------------------- *)

let format mem ~base ~len =
  if len <= header_bytes then invalid_arg "Log.format: region too small";
  let s = encode_slot ~crc:true ~version:1 ~head:0 ~tail:0 in
  Pmem.write mem ~addr:(base + slot_bytes) s;
  (* slot 1 = version 1 *)
  Pmem.write mem ~addr:base (String.make slot_bytes '\000');
  Pmem.flush mem ~addr:base ~len:header_bytes

let attach ?(style = `Latest) mem ~base ~len =
  if len <= header_bytes then Error "region too small"
  else begin
    let crc = style <> `Pmdk in
    let s0 = decode_slot ~crc (Pmem.read mem ~addr:base ~len:slot_bytes) in
    let s1 = decode_slot ~crc (Pmem.read mem ~addr:(base + slot_bytes) ~len:slot_bytes) in
    let best =
      match (s0, s1) with
      | Some (v0, h0, t0), Some (v1, h1, t1) ->
        if v0 > v1 then Some (v0, h0, t0) else Some (v1, h1, t1)
      | Some s, None | None, Some s -> Some s
      | None, None -> None
    in
    match best with
    | None -> Error "no valid header slot (metadata corrupt)"
    | Some (version, head, tail) ->
      if tail < head then Error "corrupt header: tail < head"
      else
        Ok
          {
            mem;
            base;
            capacity = len - header_bytes;
            style;
            lock = Mutex.create ();
            head;
            tail;
            version;
          }
  end

let head t = t.head
let tail t = t.tail
let capacity t = t.capacity

(* --- data paths -------------------------------------------------------- *)

let data_addr t off = t.base + header_bytes + (off mod t.capacity)

(* Write s at virtual offset off, handling wrap-around; flush the ranges. *)
let write_data t off s =
  let n = String.length s in
  let pos = off mod t.capacity in
  if pos + n <= t.capacity then begin
    Pmem.write t.mem ~addr:(data_addr t off) s;
    Pmem.flush t.mem ~addr:(data_addr t off) ~len:n
  end
  else begin
    let first = t.capacity - pos in
    Pmem.write t.mem ~addr:(data_addr t off) (String.sub s 0 first);
    Pmem.flush t.mem ~addr:(data_addr t off) ~len:first;
    Pmem.write t.mem ~addr:(t.base + header_bytes) (String.sub s first (n - first));
    Pmem.flush t.mem ~addr:(t.base + header_bytes) ~len:(n - first)
  end

let append t s =
  let do_append () =
    let n = String.length s in
    if n = 0 then Ok ()
    else if t.tail - t.head + n > t.capacity then Error "log full"
    else begin
      let payload =
        match t.style with
        | `Initial ->
          (* The first prototype's extra DRAM copy before writing. *)
          let b = Buffer.create n in
          Buffer.add_string b s;
          Buffer.contents b
        | `Latest | `Pmdk -> s
      in
      write_data t t.tail payload;
      t.tail <- t.tail + n;
      write_slot t;
      Ok ()
    end
  in
  if t.style = `Pmdk then begin
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) do_append
  end
  else do_append ()

let advance_head t new_head =
  if new_head < t.head || new_head > t.tail then Error "bad head"
  else begin
    t.head <- new_head;
    write_slot t;
    Ok ()
  end

let read t ~offset ~len =
  if offset < t.head || offset + len > t.tail then Error "read outside log"
  else if len < 0 then Error "negative length"
  else begin
    let pos = offset mod t.capacity in
    if pos + len <= t.capacity then Ok (Pmem.read t.mem ~addr:(data_addr t offset) ~len)
    else begin
      let first = t.capacity - pos in
      Ok
        (Pmem.read t.mem ~addr:(data_addr t offset) ~len:first
        ^ Pmem.read t.mem ~addr:(t.base + header_bytes) ~len:(len - first))
    end
  end
