(* Sign-magnitude bignums with base-2^30 limbs stored little-endian in an
   int array.  Magnitudes are normalized: no trailing zero limbs, and zero is
   represented uniquely as [{ sign = 0; mag = [||] }]. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* min_int negation is fine: magnitudes are built limb by limb below. *)
    let rec limbs acc v =
      if v = 0 then List.rev acc
      else limbs ((v land base_mask) :: acc) (v lsr base_bits)
    in
    let v = if i < 0 then -i else i in
    if v < 0 then
      (* i = min_int: -i overflowed; peel one limb manually. *)
      let low = i land base_mask in
      let rest = -(i asr base_bits) in
      let mag = Array.of_list (low :: limbs [] rest) in
      normalize sign mag
    else { sign; mag = Array.of_list (limbs [] v) }
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let is_zero a = a.sign = 0
let sign a = a.sign

(* Compare magnitudes only. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

(* Fast path: values whose magnitude fits in one limb. *)
let small a = Array.length a.mag <= 1

let small_val a = if a.sign = 0 then 0 else a.sign * a.mag.(0)

let rec add a b =
  if small a && small b then of_int (small_val a + small_val b)
  else if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = if small a && small b then of_int (small_val a - small_val b) else add a (neg b)

let mul a b =
  if small a && small b then of_int (small_val a * small_val b)
  else if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * b.mag.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      (* Propagate the final carry (it can exceed one limb only if a later
         addition overflows, which it cannot: carry < base). *)
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) r
  end

(* Divide magnitude by a single limb; returns (quotient magnitude, rem). *)
let divmod_small mag d =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor mag.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Schoolbook long division on magnitudes, Knuth algorithm D simplified by
   operating on normalized (shifted) limbs. Requires b <> 0. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else if cmp_mag a b < 0 then ([||], a)
  else begin
    (* Normalize so the top limb of the divisor has its high bit set. *)
    let shift = ref 0 in
    let top = b.(lb - 1) in
    while top lsl !shift < base / 2 do
      incr shift
    done;
    let sh = !shift in
    let shl m =
      if sh = 0 then Array.copy m
      else begin
        let n = Array.length m in
        let r = Array.make (n + 1) 0 in
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let v = (m.(i) lsl sh) lor !carry in
          r.(i) <- v land base_mask;
          carry := v lsr base_bits
        done;
        r.(n) <- !carry;
        r
      end
    in
    let shr m =
      if sh = 0 then m
      else begin
        let n = Array.length m in
        let r = Array.make n 0 in
        let carry = ref 0 in
        for i = n - 1 downto 0 do
          r.(i) <- (m.(i) lsr sh) lor (!carry lsl (base_bits - sh));
          carry := m.(i) land ((1 lsl sh) - 1)
        done;
        r
      end
    in
    let u = shl a and v = shl b in
    let v =
      let n = ref (Array.length v) in
      while !n > 0 && v.(!n - 1) = 0 do decr n done;
      Array.sub v 0 !n
    in
    let lv = Array.length v in
    let lu = Array.length u in
    let m = lu - lv in
    let q = Array.make (Stdlib.max m 1) 0 in
    (* u is mutated in place as the running remainder. *)
    let vtop = v.(lv - 1) in
    let vsnd = if lv >= 2 then v.(lv - 2) else 0 in
    for j = m - 1 downto 0 do
      let ujv = if j + lv < lu then u.(j + lv) else 0 in
      let num = (ujv lsl base_bits) lor u.(j + lv - 1) in
      let qhat = ref (Stdlib.min (num / vtop) (base - 1)) in
      let rhat = ref (num - (!qhat * vtop)) in
      while
        !rhat < base
        && !qhat * vsnd > (!rhat lsl base_bits) lor (if j + lv >= 2 then u.(j + lv - 2) else 0)
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* Multiply-subtract qhat * v from u[j .. j+lv]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to lv - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let s = u.(i + j) - (p land base_mask) - !borrow in
        if s < 0 then begin
          u.(i + j) <- s + base;
          borrow := 1
        end else begin
          u.(i + j) <- s;
          borrow := 0
        end
      done;
      let s = (if j + lv < lu then u.(j + lv) else 0) - !carry - !borrow in
      let s, negative = if s < 0 then (s + base, true) else (s, false) in
      if j + lv < lu then u.(j + lv) <- s;
      if negative then begin
        (* qhat was one too large; add v back. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to lv - 1 do
          let t = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- t land base_mask;
          carry := t lsr base_bits
        done;
        if j + lv < lu then u.(j + lv) <- (u.(j + lv) + !carry) land base_mask
      end;
      q.(j) <- !qhat
    done;
    let rem = shr (Array.sub u 0 lv) in
    (q, rem)
  end

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  if small a && small b then begin
    let x = small_val a and y = small_val b in
    (of_int (x / y), of_int (x mod y))
  end
  else if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let ediv_rem a b =
  let q, r = div_rem a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let fdiv a b =
  let q, r = div_rem a b in
  if r.sign = 0 || r.sign = b.sign then q else sub q one

let fmod a b =
  let r = sub a (mul (fdiv a b) b) in
  r

let rec gcd a b =
  if small a && small b then begin
    let rec go x y = if y = 0 then x else go y (x mod y) in
    of_int (go (Stdlib.abs (small_val a)) (Stdlib.abs (small_val b)))
  end
  else begin
    let a = abs a and b = abs b in
    if is_zero b then a else gcd b (snd (div_rem a b))
  end

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let shift_left n k = mul n (pow two k)

let logand2p n k =
  (* n land (2^k - 1) for n >= 0: keep the low k bits of the magnitude. *)
  if n.sign < 0 then invalid_arg "Bigint.logand2p: negative";
  if n.sign = 0 then zero
  else begin
    let full = k / base_bits and part = k mod base_bits in
    let len = Array.length n.mag in
    let keep = Stdlib.min len (full + if part > 0 then 1 else 0) in
    let mag = Array.sub n.mag 0 keep in
    if part > 0 && full < keep then mag.(full) <- mag.(full) land ((1 lsl part) - 1);
    (* Limbs above [full] (when part = 0) must be dropped, handled by keep. *)
    normalize 1 mag
  end

let testbit n k =
  if n.sign < 0 then invalid_arg "Bigint.testbit: negative";
  let limb = k / base_bits and bit = k mod base_bits in
  limb < Array.length n.mag && (n.mag.(limb) lsr bit) land 1 = 1

let to_int_opt a =
  (* Native ints hold at least 62 bits; accept up to 2 full limbs plus a
     partial third as long as the final value round-trips. *)
  let l = Array.length a.mag in
  if l = 0 then Some 0
  else if l > 3 then None
  else begin
    let v = ref 0 and overflow = ref false in
    for i = l - 1 downto 0 do
      if !v > (max_int - a.mag.(i)) lsr base_bits then overflow := true
      else v := (!v lsl base_bits) lor a.mag.(i)
    done;
    if !overflow then None else Some (a.sign * !v)
  end

let to_int_exn a =
  match to_int_opt a with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: out of range"

let ten = of_int 10
let billion = of_int 1_000_000_000

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc m =
      if is_zero m then acc
      else begin
        let q, r = div_rem m billion in
        chunks (to_int_exn r :: acc) q
      end
    in
    match chunks [] (abs a) with
    | [] -> "0"
    | first :: rest ->
      if a.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let hash a = Hashtbl.hash (a.sign, a.mag)
let pp fmt a = Format.pp_print_string fmt (to_string a)
