(* 64-bit FNV-1a.  Kept deliberately boring: no allocation per byte, no
   dependence on word size (everything is Int64), identical output on
   every platform. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* A second, independent stream for the 128-bit fingerprint: the FNV-0
   style trick of starting from a different basis (here the offset basis
   xored with a fixed pattern) gives an unrelated trajectory through the
   same byte sequence. *)
let fnv_offset2 = Int64.logxor fnv_offset 0x5bd1e995a5aa5aa5L

type state = { mutable h : int64 }

let create () = { h = fnv_offset }

let add_char st c =
  st.h <- Int64.mul (Int64.logxor st.h (Int64.of_int (Char.code c))) fnv_prime

let add_string st s = String.iter (add_char st) s

let add_int st n =
  add_string st (string_of_int n);
  add_char st '|'

let hex_of_int64 h = Printf.sprintf "%016Lx" h
let hex st = hex_of_int64 st.h

let string s =
  let st = create () in
  add_string st s;
  hex st

let string128 s =
  let a = create () in
  add_string a s;
  let b = { h = fnv_offset2 } in
  add_string b s;
  (* Post-mix the length into the second stream so extensions that happen
     to fix one stream still move the other. *)
  add_int b (String.length s);
  hex a ^ hex b
