type t = { n : int; adj : (int * int) list array }

let create n = { n; adj = Array.make (max n 1) [] }
let n_vertices g = g.n

let add_edge g ?(w = 0) u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Graph.add_edge: vertex out of range";
  g.adj.(u) <- (v, w) :: g.adj.(u)

let succ g u = g.adj.(u)

(* Tarjan's SCC, iterative to survive deep graphs. *)
let scc g =
  let n = g.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  (* Explicit DFS stack: (vertex, remaining successor list). *)
  let strongconnect v0 =
    let call_stack = ref [ (v0, ref (List.map fst g.adj.(v0))) ] in
    index.(v0) <- !next_index;
    lowlink.(v0) <- !next_index;
    incr next_index;
    stack := v0 :: !stack;
    on_stack.(v0) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (v, rest) :: tl -> (
          match !rest with
          | w :: ws ->
              rest := ws;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                call_stack := (w, ref (List.map fst g.adj.(w))) :: !call_stack
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              call_stack := tl;
              (match tl with
              | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                (* Pop the component. *)
                let comp = ref [] in
                let continue_ = ref true in
                while !continue_ do
                  match !stack with
                  | [] -> continue_ := false
                  | w :: tl' ->
                      stack := tl';
                      on_stack.(w) <- false;
                      comp := w :: !comp;
                      if w = v then continue_ := false
                done;
                components := !comp :: !components
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

let is_cyclic_component g comp =
  match comp with
  | [] -> false
  | [ v ] -> List.exists (fun (w, _) -> w = v) g.adj.(v)
  | _ -> true

(* Positive-weight cycle detection inside one SCC: Bellman–Ford with
   maximisation.  All distances start at 0 (every vertex is a source); if
   any edge still relaxes after |comp| full rounds, the component holds a
   cycle of strictly positive total weight. *)
let positive_cycle g comp =
  match comp with
  | [] | [ _ ] when not (is_cyclic_component g comp) -> None
  | _ ->
      let in_comp = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
      let dist = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace dist v 0) comp;
      let edges =
        List.concat_map
          (fun u ->
            List.filter_map
              (fun (v, w) ->
                if Hashtbl.mem in_comp v then Some (u, v, w) else None)
              g.adj.(u))
          comp
      in
      let n = List.length comp in
      for _round = 1 to n do
        List.iter
          (fun (u, v, w) ->
            let du = Hashtbl.find dist u in
            let dv = Hashtbl.find dist v in
            if du + w > dv then Hashtbl.replace dist v (du + w))
          edges
      done;
      let witnesses = ref [] in
      List.iter
        (fun (u, v, w) ->
          let du = Hashtbl.find dist u in
          let dv = Hashtbl.find dist v in
          if du + w > dv then witnesses := v :: !witnesses)
        edges;
      if !witnesses = [] then None
      else Some (List.sort_uniq compare !witnesses)
