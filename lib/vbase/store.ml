type loaded = {
  entries : (string * Json.t) list;
  dropped : int;
  corrupt : bool;
}

let empty = { entries = []; dropped = 0; corrupt = false }
let corrupt_store = { entries = []; dropped = 0; corrupt = true }

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      try
        let n = in_channel_length ic in
        Some (really_input_string ic n)
      with _ -> None
    in
    close_in_noerr ic;
    r

let load ~dir ~file ~schema =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then empty
  else
    match read_file path with
    | None -> corrupt_store
    | Some text -> (
      match Json.of_string text with
      | Error _ -> corrupt_store
      | Ok doc -> (
        match Json.member "schema" doc with
        | Some (Json.String s) when String.equal s schema -> (
          match Json.member "entries" doc with
          | Some (Json.Obj kvs) ->
            (* An entry is any (key, value) binding; values that are not
               objects are still returned — the *consumer's* decoder
               decides what is malformed for its schema.  Here we only
               drop bindings the JSON layer itself cannot represent as
               entries (none, given Obj), so dropped counts stay with the
               table-shape checks below. *)
            { entries = kvs; dropped = 0; corrupt = false }
          | Some _ | None -> corrupt_store)
        | Some _ | None -> corrupt_store))

(* mkdir -p: cache directories are routinely nested (one per program
   under a bench root) and none of the ancestors need exist yet. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    (* A concurrent creator is fine: only a still-missing dir is an error. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let save ~dir ~file ~schema entries =
  (* Last binding of a duplicated key wins, then sort for determinism. *)
  let tbl = Hashtbl.create (List.length entries) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let doc = Json.Obj [ ("schema", Json.String schema); ("entries", Json.Obj entries) ] in
  let text = Json.to_string ~indent:true doc ^ "\n" in
  try
    mkdir_p dir;
    let path = Filename.concat dir file in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc text;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    (* rename(2): the update is atomic — readers see the old document or
       the new one, never a prefix. *)
    Sys.rename tmp path;
    Ok ()
  with Sys_error m -> Error m

let wipe ~dir ~file =
  let path = Filename.concat dir file in
  let rm p = if Sys.file_exists p then Sys.remove p in
  try
    rm (path ^ ".tmp");
    rm path;
    Ok ()
  with Sys_error m -> Error m
