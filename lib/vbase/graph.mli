(** Small directed-graph toolkit: adjacency lists over integer vertices
    [0..n-1], optionally weighted edges, Tarjan strongly-connected
    components, and positive-weight cycle detection.

    Used by the EPR sort-graph acyclicity check ([Smt.Epr]) and by the
    static-analysis passes in [Verus.Vlint] (termination call graph,
    quantifier instantiation graph). *)

type t

val create : int -> t
(** [create n] is an empty graph on vertices [0..n-1]. *)

val n_vertices : t -> int

val add_edge : t -> ?w:int -> int -> int -> unit
(** [add_edge g ~w u v] adds a directed edge [u -> v] with weight [w]
    (default [0]).  Parallel edges are kept; when several edges link the
    same pair the algorithms below consider the maximum weight. *)

val succ : t -> int -> (int * int) list
(** [succ g u] is the list of [(v, w)] successors of [u]. *)

val scc : t -> int list list
(** Tarjan's algorithm.  Returns the strongly-connected components in
    reverse topological order (callees before callers).  Every vertex
    appears in exactly one component. *)

val is_cyclic_component : t -> int list -> bool
(** A component is cyclic iff it has more than one vertex, or its single
    vertex has a self-loop. *)

val positive_cycle : t -> int list -> int list option
(** [positive_cycle g comp] detects whether the subgraph induced by
    [comp] contains a cycle of strictly positive total weight
    (Bellman–Ford, maximising).  Returns some witness vertex list
    (vertices on or reaching the cycle) if so. *)
