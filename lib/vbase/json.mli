(** A minimal self-contained JSON tree: printer and recursive-descent
    parser.

    The observability layer ({!Smt.Profile} aggregated by the driver, the
    [verus_cli profile --json] subcommand, the benchmark harness's
    [BENCH_profile.json]) emits machine-readable traces through this module,
    and the CI smoke check parses them back — round-tripping through one
    implementation keeps the emitted schema and the validated schema from
    drifting apart.  No external JSON dependency is used anywhere in the
    repository.

    The subset implemented is exactly what the traces need: objects, arrays,
    strings (with [\uXXXX] escapes for control and non-ASCII bytes), [int]
    and [float] numbers, booleans and [null].  Numbers that parse exactly as
    OCaml [int]s are returned as {!Int}; everything else numeric becomes
    {!Float}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion-ordered; duplicate keys kept *)

val to_string : ?indent:bool -> t -> string
(** Serialize.  [indent:true] (default) pretty-prints with two-space
    indentation — traces are meant to be diffed and read by humans too. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    The error string includes a character offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on missing
    keys or non-objects. *)

val path : string list -> t -> t option
(** [path ["a"; "b"] j] descends nested objects: [member "b" (member "a" j)]. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a [float]. *)
