(** Growable arrays ("vectors").

    The SAT solver and the case-study data planes need amortized O(1)
    push/pop with unboxed int access patterns; OCaml's [Buffer] is byte-only
    and [Dynarray] is not in 5.1's stdlib, so we provide our own. *)

type 'a t

(** [create ~dummy] makes an empty vector.  [dummy] fills unused slots. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** Raises [Failure] on an empty vector. *)
val pop : 'a t -> 'a

val top : 'a t -> 'a
val clear : 'a t -> unit

(** [shrink v n] drops elements so that [length v = n]. *)
val shrink : 'a t -> int -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
