(** A versioned, corruption-tolerant, atomically-updated on-disk JSON
    store: the persistence substrate of the verification cache.

    A store is one JSON document in a directory:

    {v
    { "schema": "<name>/<version>",
      "entries": { "<key>": <value>, ... } }
    v}

    Design constraints (they are the whole point):
    - {b Atomic updates.}  {!save} writes to a temp file in the same
      directory and [rename]s it over the target, so a crash mid-write
      leaves either the old document or the new one, never a torn mix.
    - {b Corruption tolerance.}  {!load} never raises and never fails a
      caller: a missing file is an empty store; an unparseable file, a
      wrong or missing schema tag, or a malformed entries table degrade to
      an empty store with [corrupt = true]; individual entries that are not
      well-formed are dropped and counted.  Cache consumers turn all of
      these into misses.
    - {b Determinism.}  {!save} sorts entries by key, so equal contents
      produce byte-identical files regardless of insertion (or worker
      completion) order. *)

type loaded = {
  entries : (string * Json.t) list;  (** surviving entries, load order *)
  dropped : int;  (** malformed entries skipped (non-object table rows) *)
  corrupt : bool;
      (** the document itself was unusable (parse error / wrong schema);
          [entries] is [[]] in that case *)
}

val load : dir:string -> file:string -> schema:string -> loaded
(** Read [dir/file] expecting the given schema tag.  Never raises. *)

val save :
  dir:string -> file:string -> schema:string -> (string * Json.t) list -> (unit, string) result
(** Atomically replace [dir/file] with a document holding the entries
    (sorted by key; later bindings of a duplicated key win).  Creates
    [dir] — including missing ancestors — if needed.  I/O failures are
    reported as [Error], never raised. *)

val wipe : dir:string -> file:string -> (unit, string) result
(** Remove the store file (and its temp leftovers) if present; the
    directory itself is kept.  [Ok] when the file did not exist. *)
