(** Seeded, deterministic fault-injection schedules.

    A fault plan is a replayable oracle shared by the simulated
    environments (the IronKV network, the PMEM device, the allocator's
    simulated mmap).  Each fault {e site} is a string key ("net.drop",
    "pmem.torn", "mmap.oom", ...) owning an independent deterministic
    random stream derived from the plan seed and the site name, so a
    site's schedule depends only on its own consult count — never on how
    other sites interleave.  Two plans built from the same seed and
    configuration therefore fire at exactly the same steps: replaying a
    run replays its faults ({!trace} is byte-identical).

    Two scheduling modes compose per site:
    - probabilistic: {!set_prob} arms the site with a firing percentage,
      drawn per consult from the site's stream;
    - explicit: {!fire_at} forces specific consult steps to fire
      ("fire at step N" plans), independent of probability.

    A site that was never armed never fires, and consults of unarmed
    sites still advance the per-site step counter, so arming a site does
    not perturb the schedules of the others. *)

type t

val create : ?seed:int -> unit -> t
(** A fresh plan.  Same [seed] (default 1) ⇒ same schedule. *)

val seed : t -> int

val set_prob : t -> string -> pct:int -> unit
(** Arm [site] to fire with probability [pct]% per consult
    ([0 <= pct <= 100]). *)

val prob : t -> string -> int
(** Currently armed percentage for [site] (0 when unarmed). *)

val fire_at : t -> string -> int list -> unit
(** Arm [site] to fire at the given consult steps (1-based); adds to any
    previously registered steps and composes with {!set_prob}. *)

val fires : t -> string -> bool
(** Consult [site]: advance its step counter and report whether the
    fault fires at this step.  Deterministic given the plan seed, the
    site's configuration and its consult count. *)

val draw : t -> string -> int -> int
(** [draw t site bound] draws a uniform value in [0, bound) for fault
    {e parameters} (delay lengths, torn-write cut points).  Uses a
    derived per-site stream, so drawing never shifts the site's firing
    schedule or step counter. *)

val step : t -> string -> int
(** Number of times [site] has been consulted so far. *)

val fired : t -> string -> int
(** Number of consults of [site] that fired. *)

val trace : t -> (string * int) list
(** Every fired fault as [(site, step)], in firing order — the replay
    record: equal seeds and consult sequences yield equal traces. *)

val trace_to_string : t -> string
(** The trace rendered one ["site@step"] per line (byte-comparable). *)
