type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }
let length v = v.len
let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vecbuf.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vecbuf.set";
  v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then failwith "Vecbuf.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let top v =
  if v.len = 0 then failwith "Vecbuf.top: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vecbuf.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
