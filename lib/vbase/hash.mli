(** Content hashing for fingerprints: 64-bit FNV-1a, exposed both as an
    incremental state and as one-shot helpers.

    The verification cache ({!Vcache} in [lib/core]) addresses entries by
    a digest of the canonical serialization of everything a solve depends
    on.  Two independent FNV streams (different offset bases) are
    concatenated into a 128-bit hex fingerprint, which makes accidental
    collisions across a cache's lifetime implausible while staying
    dependency-free and byte-for-byte reproducible across platforms
    (all arithmetic is [Int64], overflow is modular by construction). *)

type state

val create : unit -> state
(** A fresh FNV-1a accumulator at the standard 64-bit offset basis. *)

val add_char : state -> char -> unit

val add_string : state -> string -> unit

val add_int : state -> int -> unit
(** Feeds the decimal rendering plus a separator, so [add_int 1; add_int 23]
    and [add_int 12; add_int 3] diverge. *)

val hex : state -> string
(** The current digest as 16 lowercase hex characters. *)

val string : string -> string
(** One-shot: [hex] of a fresh state fed the whole string. *)

val string128 : string -> string
(** 32 hex characters from two independent FNV-1a streams over the same
    bytes (the second uses a distinct offset basis and post-mixes with the
    length).  This is the fingerprint format the verification cache keys
    entries by. *)
