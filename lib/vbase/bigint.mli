(** Arbitrary-precision signed integers.

    The SMT substrate needs exact integer arithmetic (simplex pivots and
    branch-and-bound produce coefficients that overflow native ints), and the
    sealed container has no [zarith]; this module provides the subset of
    bignum arithmetic the solver requires.  Representation is
    sign-magnitude with base-2^30 limbs. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [to_int_exn n] raises [Failure] when [n] does not fit in a native
    [int]. *)
val to_int_exn : t -> int

val of_string : string -> t
val to_string : t -> string

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Truncated division (rounds toward zero), like OCaml's [/] and [mod]:
    [div_rem a b = (q, r)] with [a = q*b + r] and [sign r = sign a].
    Raises [Division_by_zero]. *)
val div_rem : t -> t -> t * t

(** Euclidean division: remainder is always in [0, |b|). *)
val ediv_rem : t -> t -> t * t

(** Floor division: [fdiv a b] rounds toward negative infinity. *)
val fdiv : t -> t -> t

(** Floor modulus: [fmod a b] has the sign of [b] (matches SMT-LIB [mod]
    for positive [b]). *)
val fmod : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** Greatest common divisor; always non-negative. *)
val gcd : t -> t -> t

(** [pow b e] for [e >= 0]; raises [Invalid_argument] on negative [e]. *)
val pow : t -> int -> t

(** [shift_left n k] is [n * 2^k]. *)
val shift_left : t -> int -> t

(** [logand2p n k] is [n land (2^k - 1)] for non-negative [n]. *)
val logand2p : t -> int -> t

(** [testbit n k] is bit [k] of non-negative [n]. *)
val testbit : t -> int -> bool

val hash : t -> int
val pp : Format.formatter -> t -> unit
