let polynomial = 0xEDB88320l

let table_entry_spec i =
  let c = ref (Int32.of_int i) in
  for _ = 0 to 7 do
    if Int32.logand !c 1l <> 0l then
      c := Int32.logxor (Int32.shift_right_logical !c 1) polynomial
    else c := Int32.shift_right_logical !c 1
  done;
  !c

let the_table = lazy (Array.init 256 table_entry_spec)
let table () = Lazy.force the_table

let digest ?(crc = 0l) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "Crc32.digest";
  let t = table () in
  let c = ref (Int32.lognot crc) in
  for i = off to off + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl) in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let digest_string s = digest (Bytes.of_string s) 0 (String.length s)
