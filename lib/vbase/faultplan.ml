(* Deterministic fault schedules: one independent splitmix64 stream per
   fault site, derived from (plan seed, site name).  The per-site stream
   means a site's schedule is a pure function of its own consult count,
   so adding instrumentation at one site never shifts the faults injected
   at another — the property the replay tests pin. *)

type site_state = {
  rng : Rng.t;
  mutable s_pct : int;
  mutable s_steps : int; (* consults so far *)
  mutable s_fired : int;
  mutable s_explicit : int list; (* pending explicit steps, sorted *)
}

type t = {
  t_seed : int;
  sites : (string, site_state) Hashtbl.t;
  mutable t_trace : (string * int) list; (* reversed *)
}

let create ?(seed = 1) () = { t_seed = seed; sites = Hashtbl.create 8; t_trace = [] }
let seed t = t.t_seed

(* A small string hash (FNV-1a, 64-bit, truncated) keeps site streams
   independent without depending on [Hashtbl.hash] stability. *)
let site_hash name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  Int64.to_int (Int64.shift_right_logical !h 1)

let site t name =
  match Hashtbl.find_opt t.sites name with
  | Some s -> s
  | None ->
    let s =
      {
        rng = Rng.create ~seed:(t.t_seed lxor site_hash name);
        s_pct = 0;
        s_steps = 0;
        s_fired = 0;
        s_explicit = [];
      }
    in
    Hashtbl.replace t.sites name s;
    s

let set_prob t name ~pct =
  if pct < 0 || pct > 100 then invalid_arg "Faultplan.set_prob: pct outside [0, 100]";
  (site t name).s_pct <- pct

let prob t name = match Hashtbl.find_opt t.sites name with Some s -> s.s_pct | None -> 0

let fire_at t name steps =
  if List.exists (fun n -> n < 1) steps then invalid_arg "Faultplan.fire_at: steps are 1-based";
  let s = site t name in
  s.s_explicit <- List.sort_uniq compare (steps @ s.s_explicit)

let fires t name =
  let s = site t name in
  s.s_steps <- s.s_steps + 1;
  (* Always draw exactly once per consult so the stream position is a
     function of the consult count alone: re-arming a site with a
     different probability replays the same underlying draws. *)
  let roll = Rng.int s.rng 100 in
  let explicit =
    match s.s_explicit with
    | n :: rest when n = s.s_steps ->
      s.s_explicit <- rest;
      true
    | _ -> false
  in
  let fired = explicit || roll < s.s_pct in
  if fired then begin
    s.s_fired <- s.s_fired + 1;
    t.t_trace <- (name, s.s_steps) :: t.t_trace
  end;
  fired

(* Parameter draws use a separate derived stream ("site#draw") so they
   never shift the site's firing schedule. *)
let draw t name bound = Rng.int (site t (name ^ "#draw")).rng bound
let step t name = match Hashtbl.find_opt t.sites name with Some s -> s.s_steps | None -> 0
let fired t name = match Hashtbl.find_opt t.sites name with Some s -> s.s_fired | None -> 0
let trace t = List.rev t.t_trace

let trace_to_string t =
  String.concat "" (List.map (fun (s, n) -> Printf.sprintf "%s@%d\n" s n) (trace t))
