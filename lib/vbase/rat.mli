(** Exact rational numbers over {!Bigint}, always kept in lowest terms with a
    positive denominator.  This is the coefficient field of the LIA simplex
    solver. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] normalizes; raises [Division_by_zero] on zero [den]. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints a b] is the rational [a/b]. *)
val of_ints : int -> int -> t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero]. *)
val div : t -> t -> t

val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val abs : t -> t

(** Largest integer [<= q]. *)
val floor : t -> Bigint.t

(** Smallest integer [>= q]. *)
val ceil : t -> Bigint.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
