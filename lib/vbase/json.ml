type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        (* Control characters and non-ASCII bytes: escape byte-wise.  The
           traces only ever contain ASCII identifiers, so lossy-but-valid
           is the right trade for a parser this small. *)
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string ?(indent = true) j =
  let b = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          go (depth + 1) v)
        kvs;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char b e;
          go ()
        | 'n' ->
          Buffer.add_char b '\n';
          go ()
        | 't' ->
          Buffer.add_char b '\t';
          go ()
        | 'r' ->
          Buffer.add_char b '\r';
          go ()
        | 'b' ->
          Buffer.add_char b '\b';
          go ()
        | 'f' ->
          Buffer.add_char b '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* Byte-oriented round trip of the printer's byte-wise escapes;
             codepoints above 0xff degrade to '?'. *)
          Buffer.add_char b (if code <= 0xff then Char.chr code else '?');
          go ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_kv () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ parse_kv () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_kv () :: !items;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error (p, msg) -> Error (Printf.sprintf "parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let path keys j =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some j) keys

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
