(** CRC-32 (IEEE 802.3 polynomial, reflected), as used by the persistent-log
    case study to protect metadata against corruption (paper §4.2.5).

    The lookup table is exposed so the verifier's proof-by-computation mode
    can re-derive it from the polynomial definition — the exact exercise the
    paper describes for `by(compute)` (§3.3). *)

val polynomial : int32
(** The reflected IEEE polynomial 0xEDB88320. *)

val table : unit -> int32 array
(** The 256-entry lookup table used by {!digest}. *)

val table_entry_spec : int -> int32
(** [table_entry_spec i] computes table entry [i] directly from the
    polynomial definition (8 conditional-xor steps), independently of the
    table.  This is the "specification" the compute-mode proof checks the
    table against. *)

val digest : ?crc:int32 -> Bytes.t -> int -> int -> int32
(** [digest ?crc buf off len] checksums [len] bytes of [buf] starting at
    [off].  [crc] continues a previous digest (default: fresh). *)

val digest_string : string -> int32
