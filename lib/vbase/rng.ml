(* splitmix64, truncated to OCaml's 63-bit native ints. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  bits t mod bound

let float t = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) /. 9007199254740992.0
let bool t = Int64.logand (next_u64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* --- Zipf sampling ---------------------------------------------------- *)

(* Inverse-CDF table: weight of rank i (0-based) is 1/(i+1)^s, normalized.
   Drawing is a binary search of a uniform float over the cumulative
   table, so a sampler is a pure function of (seed, s, n) — the skewed
   workload generators replay exactly. *)

type zipf = { z_s : float; z_n : int; z_cdf : float array }

let zipf ~s ~n =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  if s < 0.0 then invalid_arg "Rng.zipf: negative exponent";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !total
  done;
  let norm = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. norm
  done;
  cdf.(n - 1) <- 1.0;
  { z_s = s; z_n = n; z_cdf = cdf }

let zipf_s z = z.z_s
let zipf_n z = z.z_n

(* Probability mass of rank [i] (from the table, so it reflects exactly
   what [zipf_draw] samples). *)
let zipf_pmf z i =
  if i < 0 || i >= z.z_n then invalid_arg "Rng.zipf_pmf: rank out of range";
  if i = 0 then z.z_cdf.(0) else z.z_cdf.(i) -. z.z_cdf.(i - 1)

let zipf_draw t z =
  let u = float t in
  (* Smallest rank whose cumulative mass exceeds u. *)
  let lo = ref 0 and hi = ref (z.z_n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.z_cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
