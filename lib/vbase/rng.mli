(** Deterministic pseudo-random numbers (splitmix64 core).

    Workload generators in the benchmarks must be reproducible across runs
    and independent of the global [Random] state, so every generator carries
    its own seeded stream. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** Raw 62-bit non-negative value. *)
val bits : t -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [shuffle rng arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
