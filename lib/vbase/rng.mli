(** Deterministic pseudo-random numbers (splitmix64 core).

    Workload generators in the benchmarks must be reproducible across runs
    and independent of the global [Random] state, so every generator carries
    its own seeded stream. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** Raw 62-bit non-negative value. *)
val bits : t -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [shuffle rng arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** {2 Zipf sampling}

    A precomputed inverse-CDF table for the Zipf(s, n) distribution over
    ranks [0 .. n-1] (rank 0 is the most frequent).  Sampling is a
    binary search over the table with one uniform draw, so a skewed
    workload is a pure function of the generator seed — the property the
    million-key IronKV workload mode relies on for replayable storms. *)

type zipf

val zipf : s:float -> n:int -> zipf
(** Build the table: weight of rank [i] is [1/(i+1)^s], normalized.
    [s = 0.0] degenerates to uniform.  O(n) time and space. *)

val zipf_draw : t -> zipf -> int
(** Sample a rank in [0, n).  Consumes exactly one uniform draw. *)

val zipf_pmf : zipf -> int -> float
(** Probability mass of a rank, as actually sampled (monotone
    non-increasing in the rank by construction). *)

val zipf_s : zipf -> float
val zipf_n : zipf -> int
