type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else if Bigint.equal den Bigint.one then { num; den }
  else begin
    let g = Bigint.gcd num den in
    let num, _ = Bigint.div_rem num g and den, _ = Bigint.div_rem den g in
    if Bigint.sign den < 0 then { num = Bigint.neg num; den = Bigint.neg den }
    else { num; den }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let neg q = { q with num = Bigint.neg q.num }

let is_int_den q = Bigint.equal q.den Bigint.one

let add a b =
  if is_int_den a && is_int_den b then { num = Bigint.add a.num b.num; den = Bigint.one }
  else
    make
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if is_int_den a && is_int_den b then { num = Bigint.mul a.num b.num; den = Bigint.one }
  else make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
let inv q = div one q
let sign q = Bigint.sign q.num
let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.equal q.den Bigint.one

let compare a b =
  if is_int_den a && is_int_den b then Bigint.compare a.num b.num
  else Bigint.sign (sub a b).num
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let abs q = if sign q < 0 then neg q else q

let floor q = Bigint.fdiv q.num q.den
let ceil q = Bigint.neg (Bigint.fdiv (Bigint.neg q.num) q.den)

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)
let hash q = Hashtbl.hash (Bigint.hash q.num, Bigint.hash q.den)
