(** IronKV wire messages and their marshallers.

    Every message crossing the simulated network is marshalled to bytes and
    parsed on receipt (so the payload-size sweep in the Figure 10 benchmark
    exercises real encode/decode work, like the verified marshalling layer
    in the paper's port). *)

type t =
  | Get of { client : int; seq : int; key : int }
  | Set of { client : int; seq : int; key : int; value : string }
  | Reply of { client : int; seq : int; key : int; value : string option }
  | Delegate of { lo : int; hi : int; dest : int; kvs : (int * string) list }
      (** delegate range [lo,hi) to host [dest], shipping its contents *)

val marshaller : t Marshal.t
(** The combinator-derived marshaller (tagged union over the variants). *)

val to_bytes : t -> bytes

val of_bytes : bytes -> t option
(** Total parse: [None] on truncation, bad tags, or trailing bytes. *)
