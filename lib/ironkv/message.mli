(** IronKV wire messages and their marshallers.

    Every message crossing the simulated network is marshalled to bytes and
    parsed on receipt (so the payload-size sweep in the Figure 10 benchmark
    exercises real encode/decode work, like the verified marshalling layer
    in the paper's port). *)

type t =
  | Get of { client : int; seq : int; key : int }
  | Set of { client : int; seq : int; key : int; value : string }
  | Reply of { client : int; seq : int; key : int; value : string option }
  | Delegate of {
      src : int;
          (** the granting host: the destination acknowledges to it once
              the shipped shard is durably installed, and epochs are only
              unique per grantor, so retransmission dedup needs the pair *)
      lo : int;
      hi : int;
      dest : int;
      epoch : int;
          (** monotone delegation epoch: receivers apply a grant only when
              it is newer than any grant they have seen (or they are its
              destination), so reordered broadcasts from different sources
              cannot roll a host's routing view backwards *)
      kvs : (int * string) list;
      cache : (int * (int * int * string option)) list;
          (** the sender's at-most-once reply cache,
              [client -> (seq, key, reply value)]: shipping it with the
              shard lets a duplicate request that crosses a re-delegation
              be suppressed (and its cached reply re-sent) by the new
              owner instead of re-executing *)
    }
      (** delegate range [lo,hi) to host [dest], shipping its contents *)
  | Ack of { src : int; epoch : int }
      (** delegation acknowledgement from the destination ([src] is the
          acker): grant [epoch] is durably installed, the grantor may stop
          retransmitting it.  Crash-safety of shard transfer rests on this
          handshake — "delivered" on a channel is not "persisted". *)

val marshaller : t Marshal.t
(** The combinator-derived marshaller (tagged union over the variants). *)

val to_bytes : t -> bytes

val of_bytes : bytes -> t option
(** Total parse: [None] on truncation, bad tags, or trailing bytes. *)
