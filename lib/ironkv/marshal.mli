(** Combinator marshalling library — the OCaml analogue of the
    [Marshallable] trait the Verus IronKV port derives with macros
    (§4.2.1): primitives and combinators each bundle a writer, a
    length-prefixed reader, and (by construction) the round-trip guarantee
    the Verus version proves as lemmas.

    All encodings are length-safe: [read] returns [None] on truncated or
    malformed input instead of raising, which is what the verified parser
    obligations amount to. *)

type 'a t

val write : 'a t -> Buffer.t -> 'a -> unit

val read : 'a t -> bytes -> int -> ('a * int) option
(** [read m buf off] parses a value starting at [off]; returns the value
    and the offset just past it. *)

val to_bytes : 'a t -> 'a -> bytes
val of_bytes : 'a t -> bytes -> 'a option
(** [of_bytes] requires the value to span the whole buffer. *)

(** {2 Primitives} *)

val u8 : int t
val u16 : int t
val u32 : int t
val u64 : int t
(** Full 63-bit OCaml ints, stored as 8 bytes. *)

val byte_string : string t
(** u32 length prefix, then raw bytes. *)

val boolean : bool t

(** {2 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val vec : 'a t -> 'a list t
(** u32 count prefix. *)

val option : 'a t -> 'a option t

val tagged : (int * 'a t) list -> tag_of:('a -> int) -> 'a t
(** Tagged unions: writers pick the case by [tag_of]; readers dispatch on
    the leading tag byte.  This is what the derive-macro produces for
    enums in the Verus port.  Raises [Invalid_argument] on duplicate or
    out-of-range tags. *)

val map_iso : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** Marshal ['b] through an isomorphism with ['a]. *)
