(* The durability layer for IronKV hosts: every state mutation a host
   acknowledges is first appended — as a marshalled record — to a
   per-host pair of persistent logs (a {!Plog.Multilog} over simulated
   PMEM), batched by group commit.  Log 0 carries the data-plane records
   (store writes, reply-cache entries, shipped shard installs, range
   drops); log 1 carries the routing plane (delegation-epoch bumps and
   range-ownership changes).  A delegation touches both planes at once,
   which is exactly what [Multilog.append_all]'s atomic multi-append
   provides: one commit-header flush publishes both new tails, so a crash
   can never persist the routing change without its data-plane effect or
   vice versa.

   Records are framed by the same self-delimiting marshalling the wire
   messages use, so the committed prefix of each log parses back into
   exactly the record sequence that was acknowledged — the recovery
   obligation the tests pin is that replaying that prefix rebuilds the
   host (kv map, at-most-once reply cache, monotone epochs) to the state
   as of the last group commit, never a torn batch.

   Pending (not yet flushed) records are staged in DRAM buffers whose
   backing blocks are drawn from the verified allocator ({!Valloc.Alloc})
   — the same accounting a real host would do for its write-ahead
   buffers — and released when the batch commits or the "process" dies. *)

type op =
  | Set_op of { client : int; seq : int; key : int; value : string }
  | Cache_op of { client : int; seq : int; key : int; value : string option }
      (* a Get executed: no store change, but the at-most-once reply
         cache gained/refreshed an entry that must survive a crash *)
  | Cache_merge of { cache : (int * (int * int * string option)) list }
      (* the reply cache shipped inside an incoming Delegate was merged
         (every receiver does this, destination or not) *)
  | Install of { src : int; epoch : int; kvs : (int * string) list }
      (* this host was the destination of grant (src, epoch) and
         installed the shipped shard; replay also rebuilds the
         applied-grant set that dedups retransmitted Delegates *)
  | Drop_range of { lo : int; hi : int }
      (* an outgoing delegation: keys in [lo, hi) left this host *)
  | Grant_out of {
      lo : int;
      hi : int;
      dest : int;
      epoch : int;
      kvs : (int * string) list;
      cache : (int * (int * int * string option)) list;
    }  (* an outgoing grant awaiting the destination's durable Ack; kept
          (with its payload) so a recovered grantor resumes retransmitting
          — the channel may have "delivered" the Delegate into a crash *)
  | Grant_done of { epoch : int }
      (* the destination acknowledged grant [epoch]: retransmission over *)

type route = {
  r_lo : int;
  r_hi : int;
  r_dest : int;
  r_epoch : int;
  r_applied : bool;
      (* whether the grant won the monotone-epoch race when it was
         handled; recording the decision makes replay order-insensitive
         to anything but the log itself *)
}

(* --- marshalling ------------------------------------------------------ *)

let cache_entry_m = Marshal.(pair u64 (triple u64 u64 (option byte_string)))

let set_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Set_op { client; seq; key; value })
    (function
      | Set_op { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 byte_string))

let cacheop_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Cache_op { client; seq; key; value })
    (function
      | Cache_op { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 (option byte_string)))

let cachemerge_m =
  Marshal.map_iso
    (fun cache -> Cache_merge { cache })
    (function Cache_merge { cache } -> cache | _ -> assert false)
    Marshal.(vec cache_entry_m)

let install_m =
  Marshal.map_iso
    (fun ((src, epoch), kvs) -> Install { src; epoch; kvs })
    (function Install { src; epoch; kvs } -> ((src, epoch), kvs) | _ -> assert false)
    Marshal.(pair (pair u64 u64) (vec (pair u64 byte_string)))

let drop_m =
  Marshal.map_iso
    (fun (lo, hi) -> Drop_range { lo; hi })
    (function Drop_range { lo; hi } -> (lo, hi) | _ -> assert false)
    Marshal.(pair u64 u64)

let grantout_m =
  Marshal.map_iso
    (fun (((lo, hi), (dest, epoch)), (kvs, cache)) ->
      Grant_out { lo; hi; dest; epoch; kvs; cache })
    (function
      | Grant_out { lo; hi; dest; epoch; kvs; cache } ->
        (((lo, hi), (dest, epoch)), (kvs, cache))
      | _ -> assert false)
    Marshal.(
      pair
        (pair (pair u64 u64) (pair u64 u64))
        (pair (vec (pair u64 byte_string)) (vec cache_entry_m)))

let grantdone_m =
  Marshal.map_iso
    (fun epoch -> Grant_done { epoch })
    (function Grant_done { epoch } -> epoch | _ -> assert false)
    Marshal.u64

let op_m =
  Marshal.tagged
    [
      (0, set_m);
      (1, cacheop_m);
      (2, cachemerge_m);
      (3, install_m);
      (4, drop_m);
      (5, grantout_m);
      (6, grantdone_m);
    ]
    ~tag_of:(function
      | Set_op _ -> 0
      | Cache_op _ -> 1
      | Cache_merge _ -> 2
      | Install _ -> 3
      | Drop_range _ -> 4
      | Grant_out _ -> 5
      | Grant_done _ -> 6)

let route_m =
  Marshal.map_iso
    (fun ((r_lo, r_hi, r_dest), (r_epoch, r_applied)) ->
      { r_lo; r_hi; r_dest; r_epoch; r_applied })
    (fun { r_lo; r_hi; r_dest; r_epoch; r_applied } ->
      ((r_lo, r_hi, r_dest), (r_epoch, r_applied)))
    Marshal.(pair (triple u64 u64 u64) (pair u64 boolean))

(* --- the layer -------------------------------------------------------- *)

let header_reserve = 256 (* Multilog commit slots *)
let op_log = 0
let route_log = 1

type t = {
  ml : Plog.Multilog.t;
  mem : Plog.Pmem.t;
  alloc : Valloc.Alloc.t option;
  group : int; (* flush once this many records are pending *)
  mutable p_ops : string list; (* reversed pending marshalled records *)
  mutable p_routes : string list;
  mutable p_blocks : int list; (* Valloc blocks staging the pending bytes *)
  mutable p_count : int;
  mutable d_committed : int; (* records committed since attach *)
  mutable d_syncs : int; (* group commits that reached media *)
}

type sync_outcome = Synced of int | Power_failed | Failed of string

let log_len_of mem = (Plog.Pmem.size mem - header_reserve) / 2

let format mem =
  if Plog.Pmem.size mem < header_reserve + 2 then
    invalid_arg "Durable.format: device too small";
  Plog.Multilog.format mem ~base:0 ~log_len:(log_len_of mem) ~logs:2

let mk ?(group = 4) ?alloc mem ml =
  if group < 1 then invalid_arg "Durable: group commit size < 1";
  {
    ml;
    mem;
    alloc;
    group;
    p_ops = [];
    p_routes = [];
    p_blocks = [];
    p_count = 0;
    d_committed = 0;
    d_syncs = 0;
  }

let attach ?group ?alloc mem =
  match Plog.Multilog.attach mem ~base:0 ~log_len:(log_len_of mem) ~logs:2 with
  | Error e -> Error e
  | Ok ml -> Ok (mk ?group ?alloc mem ml)

let group t = t.group
let pending t = t.p_count
let committed t = t.d_committed
let syncs t = t.d_syncs

(* Stage the marshalled bytes: account a DRAM block (or several, for
   records above the allocator's size cap) from the verified allocator.
   Allocation failure (injected OOM) degrades to unaccounted staging
   rather than losing the record — the record bytes themselves live in
   the OCaml heap either way. *)
let stage t s =
  (match t.alloc with
  | None -> ()
  | Some a ->
    let len = String.length s in
    let rec grab rem =
      if rem > 0 then begin
        let n = min rem Valloc.Alloc.max_alloc in
        (match Valloc.Alloc.malloc_opt a ~heap:0 (max 1 n) with
        | Some b -> t.p_blocks <- b :: t.p_blocks
        | None -> ());
        grab (rem - n)
      end
    in
    grab len);
  t.p_count <- t.p_count + 1

let log_op t o =
  let s = Bytes.to_string (Marshal.to_bytes op_m o) in
  t.p_ops <- s :: t.p_ops;
  stage t s

let log_route t r =
  let s = Bytes.to_string (Marshal.to_bytes route_m r) in
  t.p_routes <- s :: t.p_routes;
  stage t s

let release_blocks t =
  (match t.alloc with
  | None -> ()
  | Some a -> List.iter (fun b -> Valloc.Alloc.free a ~heap:0 b) t.p_blocks);
  t.p_blocks <- []

(* Group commit: one atomic multi-append publishes the whole pending
   batch — data records and routing records together — with a single
   commit-header flush as the commit point.  After the append we consult
   the PMEM power state: a torn flush means the "successful" append never
   reached media, so the caller must treat the host as crashed instead of
   acknowledging the batch. *)
let sync t =
  if t.p_count = 0 then
    if Plog.Pmem.power_failed t.mem then Power_failed else Synced 0
  else begin
    let ops = String.concat "" (List.rev t.p_ops) in
    let routes = String.concat "" (List.rev t.p_routes) in
    let tails = Array.of_list (Plog.Multilog.tails t.ml) in
    let cap = Plog.Multilog.log_len t.ml in
    (* Replay reads the full history from offset 0, so the no-wrap
       multilog must never cycle: reject (rather than silently overwrite)
       once a log region is exhausted. *)
    if tails.(op_log) + String.length ops > cap
       || tails.(route_log) + String.length routes > cap
    then Failed "durable log full (size the device for the workload)"
    else begin
      match Plog.Multilog.append_all t.ml [ ops; routes ] with
      | Error e -> Failed e
      | Ok () ->
        if Plog.Pmem.power_failed t.mem then Power_failed
        else begin
          let n = t.p_count in
          t.d_committed <- t.d_committed + n;
          t.d_syncs <- t.d_syncs + 1;
          t.p_ops <- [];
          t.p_routes <- [];
          t.p_count <- 0;
          release_blocks t;
          Synced n
        end
    end
  end

(* --- recovery --------------------------------------------------------- *)

let parse_stream m buf =
  let len = Bytes.length buf in
  let rec go acc off =
    if off = len then Ok (List.rev acc)
    else
      match Marshal.read m buf off with
      | Some (x, off') when off' > off -> go (x :: acc) off'
      | _ -> Error (Printf.sprintf "corrupt record at committed offset %d" off)
  in
  go [] 0

let read_log t log =
  let tail = List.nth (Plog.Multilog.tails t.ml) log in
  if tail = 0 then Ok (Bytes.create 0)
  else
    match Plog.Multilog.read t.ml ~log ~offset:0 ~len:tail with
    | Ok s -> Ok (Bytes.of_string s)
    | Error e -> Error e

let crash_during_recovery_site = "host.crash.recovery"

(* Recovery: attach (newest valid commit header wins), then parse the
   committed prefix of both logs back into record lists.  The
   [host.crash.recovery] fault site models the double-fault case — power
   failing again while replay is in flight.  Replay never writes, so a
   recovery crash simply restarts recovery from the same committed state;
   the retry loop is bounded to keep a 100%-armed site from livelocking
   the harness. *)
let recover ?group ?alloc ?faults mem =
  let rec attempt retries =
    match attach ?group ?alloc mem with
    | Error e -> Error e
    | Ok t -> (
      match read_log t op_log with
      | Error e -> Error ("op log: " ^ e)
      | Ok ops_raw -> (
        match parse_stream op_m ops_raw with
        | Error e -> Error ("op log: " ^ e)
        | Ok ops ->
          let crashed_mid_replay =
            retries < 25
            &&
            match faults with
            | Some plan -> Vbase.Faultplan.fires plan crash_during_recovery_site
            | None -> false
          in
          if crashed_mid_replay then begin
            (* The machine rebooted mid-replay: volatile progress is
               gone; start over from the same committed prefix. *)
            Plog.Pmem.crash mem;
            attempt (retries + 1)
          end
          else
            match read_log t route_log with
            | Error e -> Error ("route log: " ^ e)
            | Ok routes_raw -> (
              match parse_stream route_m routes_raw with
              | Error e -> Error ("route log: " ^ e)
              | Ok routes -> Ok (t, ops, routes))))
  in
  attempt 0
