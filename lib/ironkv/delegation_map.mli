(** The IronKV delegation map (§3.2, §4.2.1): maps every key to the host
    responsible for it, stored compactly as a sorted list of pivots (each
    pivot starts a range governed by one host).

    The efficient pivot representation has the "many tricky corner cases"
    the paper describes; {!check_invariant} exposes the representation
    invariant that the EPR proof (see {!Delegation_proof}) verifies at the
    abstract level, and the test suite checks this implementation against a
    naive whole-keyspace model. *)

type t

val create : default_host:int -> t
(** All keys map to [default_host]. *)

val get : t -> int -> int
(** Host responsible for a key (binary search over pivots). *)

val set_range : t -> lo:int -> hi:int -> host:int -> unit
(** Delegate keys in [lo, hi) to [host].  No-op when [lo >= hi]. *)

val pivot_count : t -> int

val check_invariant : t -> (unit, string) result
(** Representation invariant: pivots sorted strictly, first pivot is key 0,
    and no two adjacent pivots name the same host (canonical form). *)

val to_alist : t -> (int * int) list
(** The pivot list (key, host), ascending. *)

val max_key : int
