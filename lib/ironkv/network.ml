(* In-memory network with deterministic fault injection.

   Messages are queue elements: [Raw] for ordinary datagrams, [Seq] for
   sequenced-channel traffic (per-(src,dst) monotone sequence numbers).
   The receive path deduplicates and releases sequenced payloads strictly
   in order, so duplication / reordering / delay injected on the wire are
   invisible above a sequenced channel — the IronFleet inter-host channel
   abstraction.  Sequenced sends are exempt from drop (the abstraction
   models a retransmitting transport); partitions park rather than drop,
   so they too preserve the channel guarantee. *)

type element = Raw of bytes | Seqm of { src : int; seq : int; payload : bytes }

type chan_recv = {
  mutable expected : int; (* next sequence number to release *)
  stash : (int, bytes) Hashtbl.t; (* out-of-order arrivals *)
}

type t = {
  queues : element Queue.t array;
  ready : bytes Queue.t array; (* sequenced payloads released in order *)
  delayed : (int * element) list ref array; (* per dst: (polls left, msg) *)
  reorder : bool; (* legacy knob *)
  duplicate_pct : int; (* legacy knob *)
  rng : Vbase.Rng.t; (* legacy knob stream *)
  faults : Vbase.Faultplan.t option;
  sequenced : bool;
  send_seqs : (int * int, int) Hashtbl.t; (* (src,dst) -> last seq sent *)
  recv_chans : (int * int, chan_recv) Hashtbl.t;
  mutable partitioned : int list; (* isolated endpoints ([] = none) *)
  parked : (int * element) Queue.t; (* (dst, msg) held across the cut *)
  mutable pending : int;
  mutable bytes_sent : int;
  mutable n_sent : int;
  mutable n_dropped : int;
  mutable n_dup : int;
  mutable n_reordered : int;
  mutable n_delayed : int;
  mutable n_parked : int;
  mutable n_dedup : int;
}

let create ?(reorder = false) ?(duplicate_pct = 0) ?(seed = 1) ?faults ?(sequenced = false)
    ~endpoints () =
  {
    queues = Array.init endpoints (fun _ -> Queue.create ());
    ready = Array.init endpoints (fun _ -> Queue.create ());
    delayed = Array.init endpoints (fun _ -> ref []);
    reorder;
    duplicate_pct;
    rng = Vbase.Rng.create ~seed;
    faults;
    sequenced;
    send_seqs = Hashtbl.create 16;
    recv_chans = Hashtbl.create 16;
    partitioned = [];
    parked = Queue.create ();
    pending = 0;
    bytes_sent = 0;
    n_sent = 0;
    n_dropped = 0;
    n_dup = 0;
    n_reordered = 0;
    n_delayed = 0;
    n_parked = 0;
    n_dedup = 0;
  }

let faults t = t.faults
let consult t site = match t.faults with Some p -> Vbase.Faultplan.fires p site | None -> false

let check_dst t dst =
  if dst < 0 || dst >= Array.length t.queues then invalid_arg "Network: bad endpoint"

let crossing t ~src ~dst =
  t.partitioned <> []
  &&
  let isolated e = List.mem e t.partitioned in
  (* An unknown sender is treated as outside the isolated set. *)
  (match src with Some s -> isolated s | None -> false) <> isolated dst

(* Enqueue one copy at [dst], applying reorder / delay / partition. *)
let deliver_one t ~src ~dst elt =
  t.pending <- t.pending + 1;
  if crossing t ~src ~dst then begin
    t.n_parked <- t.n_parked + 1;
    Queue.push (dst, elt) t.parked
  end
  else if consult t "net.delay" then begin
    let plan = Option.get t.faults in
    let polls = 1 + Vbase.Faultplan.draw plan "net.delay" 4 in
    t.n_delayed <- t.n_delayed + 1;
    let d = t.delayed.(dst) in
    d := !d @ [ (polls, elt) ]
  end
  else begin
    let q = t.queues.(dst) in
    let overtake =
      Queue.length q > 0
      && ((t.reorder && Vbase.Rng.bool t.rng) || consult t "net.reorder")
    in
    if overtake then begin
      (* Swap with the current head: the newcomer overtakes one message. *)
      t.n_reordered <- t.n_reordered + 1;
      let head = Queue.pop q in
      Queue.push elt q;
      Queue.push head q
    end
    else Queue.push elt q
  end

let send_element t ~src ~dst ~droppable elt payload_len =
  check_dst t dst;
  t.n_sent <- t.n_sent + 1;
  t.bytes_sent <- t.bytes_sent + payload_len;
  if droppable && consult t "net.drop" then t.n_dropped <- t.n_dropped + 1
  else begin
    let copies =
      let legacy_dup = t.duplicate_pct > 0 && Vbase.Rng.int t.rng 100 < t.duplicate_pct in
      if legacy_dup || consult t "net.dup" then begin
        t.n_dup <- t.n_dup + 1;
        2
      end
      else 1
    in
    for _ = 1 to copies do
      deliver_one t ~src ~dst elt
    done
  end

let send t ?src ~dst msg = send_element t ~src ~dst ~droppable:true (Raw msg) (Bytes.length msg)

let send_seq t ~src ~dst msg =
  if not t.sequenced then send t ~src ~dst msg
  else begin
    check_dst t dst;
    let last = Option.value ~default:0 (Hashtbl.find_opt t.send_seqs (src, dst)) in
    let seq = last + 1 in
    Hashtbl.replace t.send_seqs (src, dst) seq;
    (* Sequenced sends are never dropped: the channel abstraction models a
       retransmitting transport (IronFleet's sequenced inter-host
       channels); dup / reorder / delay still hit the wire and are masked
       by the receiver state below. *)
    send_element t ~src:(Some src) ~dst ~droppable:false
      (Seqm { src; seq; payload = msg })
      (Bytes.length msg)
  end

let chan t ~src ~dst =
  match Hashtbl.find_opt t.recv_chans (src, dst) with
  | Some c -> c
  | None ->
    let c = { expected = 1; stash = Hashtbl.create 8 } in
    Hashtbl.replace t.recv_chans (src, dst) c;
    c

(* Move the contiguous run now available in [c.stash] to the ready queue. *)
let release_stash t ~me c =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt c.stash c.expected with
    | Some payload ->
      Hashtbl.remove c.stash c.expected;
      c.expected <- c.expected + 1;
      Queue.push payload t.ready.(me)
    | None -> continue := false
  done

let age_delayed t ~me =
  let d = t.delayed.(me) in
  let due, still = List.partition (fun (polls, _) -> polls <= 1) !d in
  d := List.map (fun (polls, e) -> (polls - 1, e)) still;
  List.iter (fun (_, e) -> Queue.push e t.queues.(me)) due

let recv t ~me =
  check_dst t me;
  age_delayed t ~me;
  if not (Queue.is_empty t.ready.(me)) then begin
    t.pending <- t.pending - 1;
    Some (Queue.pop t.ready.(me))
  end
  else begin
    let rec next () =
      if Queue.is_empty t.queues.(me) then None
      else
        match Queue.pop t.queues.(me) with
        | Raw b ->
          t.pending <- t.pending - 1;
          Some b
        | Seqm { src; seq; payload } ->
          let c = chan t ~src ~dst:me in
          if seq < c.expected || Hashtbl.mem c.stash seq then begin
            (* Receiver-side dedup: already delivered or already buffered. *)
            t.pending <- t.pending - 1;
            t.n_dedup <- t.n_dedup + 1;
            next ()
          end
          else if seq = c.expected then begin
            c.expected <- c.expected + 1;
            release_stash t ~me c;
            t.pending <- t.pending - 1;
            Some payload
          end
          else begin
            (* Out of order: hold until the gap fills (still pending). *)
            Hashtbl.replace c.stash seq payload;
            next ()
          end
    in
    next ()
  end

let set_partition t eps =
  List.iter (fun e -> check_dst t e) eps;
  t.partitioned <- List.sort_uniq compare eps

let heal_partition t =
  t.partitioned <- [];
  (* Re-deliver without re-consulting faults: the cut was the fault.
     Parked messages stayed pending, so counters are already right. *)
  Queue.iter (fun (dst, elt) -> Queue.push elt t.queues.(dst)) t.parked;
  Queue.clear t.parked

let pending t = t.pending
let bytes_sent t = t.bytes_sent

let stats t =
  [
    ("sent", t.n_sent);
    ("dropped", t.n_dropped);
    ("duplicated", t.n_dup);
    ("reordered", t.n_reordered);
    ("delayed", t.n_delayed);
    ("parked", t.n_parked);
    ("dedup_suppressed", t.n_dedup);
  ]
