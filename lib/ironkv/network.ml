type t = {
  queues : bytes Queue.t array;
  reorder : bool;
  duplicate_pct : int;
  rng : Vbase.Rng.t;
  mutable pending : int;
  mutable bytes_sent : int;
}

let create ?(reorder = false) ?(duplicate_pct = 0) ?(seed = 1) ~endpoints () =
  {
    queues = Array.init endpoints (fun _ -> Queue.create ());
    reorder;
    duplicate_pct;
    rng = Vbase.Rng.create ~seed;
    pending = 0;
    bytes_sent = 0;
  }

let push_one t ~dst msg =
  let q = t.queues.(dst) in
  if t.reorder && Queue.length q > 0 && Vbase.Rng.bool t.rng then begin
    (* Swap with the current head by re-queuing behind a rotated element. *)
    let head = Queue.pop q in
    Queue.push msg q;
    Queue.push head q
  end
  else Queue.push msg q;
  t.pending <- t.pending + 1

let send t ~dst msg =
  if dst < 0 || dst >= Array.length t.queues then invalid_arg "Network.send: bad endpoint";
  t.bytes_sent <- t.bytes_sent + Bytes.length msg;
  push_one t ~dst msg;
  if t.duplicate_pct > 0 && Vbase.Rng.int t.rng 100 < t.duplicate_pct then push_one t ~dst msg

let recv t ~me =
  let q = t.queues.(me) in
  if Queue.is_empty q then None
  else begin
    t.pending <- t.pending - 1;
    Some (Queue.pop q)
  end

let pending t = t.pending
let bytes_sent t = t.bytes_sent
