type t =
  | Get of { client : int; seq : int; key : int }
  | Set of { client : int; seq : int; key : int; value : string }
  | Reply of { client : int; seq : int; key : int; value : string option }
  | Delegate of { lo : int; hi : int; dest : int; kvs : (int * string) list }

let tag_of = function Get _ -> 0 | Set _ -> 1 | Reply _ -> 2 | Delegate _ -> 3

let get_m =
  Marshal.map_iso
    (fun (client, seq, key) -> Get { client; seq; key })
    (function Get { client; seq; key } -> (client, seq, key) | _ -> assert false)
    Marshal.(triple u64 u64 u64)

let set_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Set { client; seq; key; value })
    (function
      | Set { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 byte_string))

let reply_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Reply { client; seq; key; value })
    (function
      | Reply { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 (option byte_string)))

let delegate_m =
  Marshal.map_iso
    (fun ((lo, hi, dest), kvs) -> Delegate { lo; hi; dest; kvs })
    (function
      | Delegate { lo; hi; dest; kvs } -> ((lo, hi, dest), kvs)
      | _ -> assert false)
    Marshal.(pair (triple u64 u64 u64) (vec (pair u64 byte_string)))

let marshaller = Marshal.tagged [ (0, get_m); (1, set_m); (2, reply_m); (3, delegate_m) ] ~tag_of
let to_bytes m = Marshal.to_bytes marshaller m
let of_bytes b = Marshal.of_bytes marshaller b
