type t =
  | Get of { client : int; seq : int; key : int }
  | Set of { client : int; seq : int; key : int; value : string }
  | Reply of { client : int; seq : int; key : int; value : string option }
  | Delegate of {
      src : int;
          (* the granting host: the destination acknowledges to it once
             the shipped shard is durably installed, and epochs are only
             unique per grantor, so dedup needs the pair *)
      lo : int;
      hi : int;
      dest : int;
      epoch : int;
          (* monotone delegation epoch: receivers apply a grant to their
             delegation map only when it is newer than anything they have
             seen (or they are its destination), so grants broadcast by
             different sources and reordered in flight can never roll a
             host's routing view backwards *)
      kvs : (int * string) list;
      cache : (int * (int * int * string option)) list;
          (* client -> (seq, key, reply value): the sender's at-most-once
             reply cache rides along with the shard *)
    }
  | Ack of { src : int; epoch : int }
      (* delegation acknowledgement from the destination ([src] is the
         acker): the grant [epoch] is durably installed, the grantor may
         stop retransmitting it.  Crash-safety of shard transfer rests on
         this handshake: "delivered" on a channel is not "persisted". *)

let tag_of = function Get _ -> 0 | Set _ -> 1 | Reply _ -> 2 | Delegate _ -> 3 | Ack _ -> 4

let get_m =
  Marshal.map_iso
    (fun (client, seq, key) -> Get { client; seq; key })
    (function Get { client; seq; key } -> (client, seq, key) | _ -> assert false)
    Marshal.(triple u64 u64 u64)

let set_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Set { client; seq; key; value })
    (function
      | Set { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 byte_string))

let reply_m =
  Marshal.map_iso
    (fun ((client, seq), (key, value)) -> Reply { client; seq; key; value })
    (function
      | Reply { client; seq; key; value } -> ((client, seq), (key, value))
      | _ -> assert false)
    Marshal.(pair (pair u64 u64) (pair u64 (option byte_string)))

let delegate_m =
  let cache_entry_m = Marshal.(pair u64 (triple u64 u64 (option byte_string))) in
  Marshal.map_iso
    (fun ((src, lo, hi), ((dest, epoch), (kvs, cache))) ->
      Delegate { src; lo; hi; dest; epoch; kvs; cache })
    (function
      | Delegate { src; lo; hi; dest; epoch; kvs; cache } ->
        ((src, lo, hi), ((dest, epoch), (kvs, cache)))
      | _ -> assert false)
    Marshal.(
      pair (triple u64 u64 u64)
        (pair (pair u64 u64) (pair (vec (pair u64 byte_string)) (vec cache_entry_m))))

let ack_m =
  Marshal.map_iso
    (fun (src, epoch) -> Ack { src; epoch })
    (function Ack { src; epoch } -> (src, epoch) | _ -> assert false)
    Marshal.(pair u64 u64)

let marshaller =
  Marshal.tagged [ (0, get_m); (1, set_m); (2, reply_m); (3, delegate_m); (4, ack_m) ] ~tag_of

let to_bytes m = Marshal.to_bytes marshaller m
let of_bytes b = Marshal.of_bytes marshaller b
