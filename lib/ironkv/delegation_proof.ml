module T = Smt.Term
module S = Smt.Sort

type obligation = { name : string; answer : Smt.Solver.answer; time_s : float }

let key = S.Usort "DKey"
let host = S.Usort "DHost"

(* Relations of the abstraction. *)
let lte = T.Sym.declare "dm.lte" [ key; key ] S.Bool (* total order on keys *)
let m = T.Sym.declare "dm.map" [ key; host ] S.Bool (* delegation map, pre *)
let m' = T.Sym.declare "dm.map'" [ key; host ] S.Bool (* delegation map, post *)
let pivot = T.Sym.declare "dm.pivot" [ key ] S.Bool
let ph = T.Sym.declare "dm.ph" [ key; host ] S.Bool (* pivot -> host *)
let fp = T.Sym.declare "dm.fp" [ key; key ] S.Bool (* floor pivot *)

let k v = T.bvar v key
let h v = T.bvar v host
let ap f args = T.app f args

let fa vars body = T.forall vars body

(* Total order axioms for lte. *)
let order_axioms =
  [
    fa [ ("x", key) ] (ap lte [ k "x"; k "x" ]);
    fa
      [ ("x", key); ("y", key) ]
      (T.implies (T.and_ [ ap lte [ k "x"; k "y" ]; ap lte [ k "y"; k "x" ] ]) (T.eq (k "x") (k "y")));
    fa
      [ ("x", key); ("y", key); ("z", key) ]
      (T.implies
         (T.and_ [ ap lte [ k "x"; k "y" ]; ap lte [ k "y"; k "z" ] ])
         (ap lte [ k "x"; k "z" ]));
    fa [ ("x", key); ("y", key) ] (T.or_ [ ap lte [ k "x"; k "y" ]; ap lte [ k "y"; k "x" ] ]);
  ]

(* in_range k = lo <= k < hi, with lo/hi constants of the set operation. *)
let lo = T.const (T.Sym.declare "dm.lo" [] key)
let hi = T.const (T.Sym.declare "dm.hi" [] key)
let h0 = T.const (T.Sym.declare "dm.h0" [] host)
let in_range x = T.and_ [ ap lte [ lo; x ]; T.not_ (ap lte [ hi; x ]) ]

(* The set update at the abstract level:
   m'(k, h) <-> (in_range k /\ h = h0) \/ (~in_range k /\ m(k, h)) *)
let set_update =
  fa
    [ ("x", key); ("a", host) ]
    (T.iff
       (ap m' [ k "x"; h "a" ])
       (T.or_
          [
            T.and_ [ in_range (k "x"); T.eq (h "a") h0 ];
            T.and_ [ T.not_ (in_range (k "x")); ap m [ k "x"; h "a" ] ];
          ]))

let functional rel =
  fa
    [ ("x", key); ("a", host); ("b", host) ]
    (T.implies (T.and_ [ ap rel [ k "x"; h "a" ]; ap rel [ k "x"; h "b" ] ]) (T.eq (h "a") (h "b")))

let total rel = fa [ ("x", key) ] (T.exists [ ("a", host) ] (ap rel [ k "x"; h "a" ]))

(* Pivot-representation coherence: the host of a key is the host of its
   floor pivot.  fp facts (existence, maximality) come from the
   implementation level (checked by default-mode reasoning there). *)
let fp_coherent =
  [
    fa [ ("x", key); ("p", key) ] (T.implies (ap fp [ k "x"; k "p" ]) (ap pivot [ k "p" ]));
    fa [ ("x", key); ("p", key) ] (T.implies (ap fp [ k "x"; k "p" ]) (ap lte [ k "p"; k "x" ]));
    fa
      [ ("x", key); ("p", key); ("q", key) ]
      (T.implies
         (T.and_ [ ap fp [ k "x"; k "p" ]; ap pivot [ k "q" ]; ap lte [ k "q"; k "x" ] ])
         (ap lte [ k "q"; k "p" ]));
    (* The invariant proper: the map delegates to the floor pivot's host. *)
    fa
      [ ("x", key); ("p", key); ("a", host) ]
      (T.implies (T.and_ [ ap fp [ k "x"; k "p" ]; ap ph [ k "p"; h "a" ] ]) (ap m [ k "x"; h "a" ]));
  ]

let run () =
  let results = ref [] in
  let prove name ~hyps goal =
    let t0 = Unix.gettimeofday () in
    let r = Smt.Epr.check_valid ~hyps goal in
    results :=
      { name; answer = r.Smt.Solver.answer; time_s = Unix.gettimeofday () -. t0 } :: !results
  in
  (* 1. new: a constant map (all keys to one host) is functional and total. *)
  let mk_const_map =
    fa [ ("x", key); ("a", host) ] (T.iff (ap m [ k "x"; h "a" ]) (T.eq (h "a") h0))
  in
  prove "new: constant map is functional" ~hyps:(order_axioms @ [ mk_const_map ]) (functional m);
  prove "new: constant map is total" ~hyps:(order_axioms @ [ mk_const_map ]) (total m);
  (* 2. set preserves functionality. *)
  prove "set: functionality preserved"
    ~hyps:(order_axioms @ [ functional m; set_update ])
    (functional m');
  (* 3. set postconditions: inside the range the new host governs; outside
        nothing changes. *)
  prove "set: range delegated"
    ~hyps:(order_axioms @ [ functional m; set_update ])
    (fa [ ("x", key) ] (T.implies (in_range (k "x")) (ap m' [ k "x"; h0 ])));
  prove "set: outside unchanged"
    ~hyps:(order_axioms @ [ functional m; set_update ])
    (fa
       [ ("x", key); ("a", host) ]
       (T.implies (T.not_ (in_range (k "x")))
          (T.iff (ap m' [ k "x"; h "a" ]) (ap m [ k "x"; h "a" ]))));
  (* 4. get: under the pivot coherence invariant, the floor pivot's host is
        the map's answer, uniquely. *)
  prove "get: floor pivot determines the host"
    ~hyps:(order_axioms @ fp_coherent @ [ functional m; functional ph ])
    (fa
       [ ("x", key); ("p", key); ("a", host); ("b", host) ]
       (T.implies
          (T.and_ [ ap fp [ k "x"; k "p" ]; ap ph [ k "p"; h "a" ]; ap m [ k "x"; h "b" ] ])
          (T.eq (h "a") (h "b"))));
  (* 5. floor pivots are unique (order antisymmetry + maximality). *)
  prove "floor pivot unique"
    ~hyps:(order_axioms @ fp_coherent)
    (fa
       [ ("x", key); ("p", key); ("q", key) ]
       (T.implies (T.and_ [ ap fp [ k "x"; k "p" ]; ap fp [ k "x"; k "q" ] ]) (T.eq (k "p") (k "q"))));
  List.rev !results

let all_proved obs = List.for_all (fun o -> o.answer = Smt.Solver.Unsat) obs

(* The abstraction above, counted as the paper counts boilerplate. *)
let boilerplate_lines = 96
