module T = Smt.Term
module S = Smt.Sort

type obligation = { name : string; mode : string; proved : bool; detail : string }

let ic name = T.const (T.Sym.declare ("mp." ^ name) [] S.Int)
let band a b = T.app (T.Sym.declare "u64.and" [ S.Int; S.Int ] S.Int) [ a; b ]
let bor a b = T.app (T.Sym.declare "u64.or" [ S.Int; S.Int ] S.Int) [ a; b ]
let bshr a k = T.app (T.Sym.declare "u64.shr" [ S.Int; S.Int ] S.Int) [ a; T.int_of k ]
let bshl a k = T.app (T.Sym.declare "u64.shl" [ S.Int; S.Int ] S.Int) [ a; T.int_of k ]
let i = T.int_of

let of_mode name mode outcome =
  match outcome with
  | Verus.Modes.Proved -> { name; mode; proved = true; detail = "" }
  | Verus.Modes.Refuted m -> { name; mode; proved = false; detail = "refuted: " ^ m }
  | Verus.Modes.Unsupported m -> { name; mode; proved = false; detail = "unsupported: " ^ m }

let of_solver name goal ~hyps =
  let r = Smt.Solver.check_valid ~hyps goal in
  {
    name;
    mode = "default";
    proved = r.Smt.Solver.answer = Smt.Solver.Unsat;
    detail =
      (match r.Smt.Solver.answer with
      | Smt.Solver.Unsat -> ""
      | Smt.Solver.Sat -> "countermodel"
      | Smt.Solver.Unknown m -> m);
  }

let run () =
  let x = ic "x" and y = ic "y" in
  [
    (* u16 big-endian byte split/recombine round-trips (default mode:
       div/mod expansion + LIA). *)
    of_solver "u16 roundtrip: 256*(x/256) + x%256 == x"
      ~hyps:[ T.ge x (i 0); T.lt x (i 65536) ]
      (T.eq (T.add [ T.mul (i 256) (T.idiv x (i 256)); T.imod x (i 256) ]) x);
    of_solver "byte bounds: x%256 in [0,255]"
      ~hyps:[ T.ge x (i 0) ]
      (T.and_ [ T.ge (T.imod x (i 256)) (i 0); T.lt (T.imod x (i 256)) (i 256) ]);
    of_solver "hi byte bounds: x/256 < 256 when x < 65536"
      ~hyps:[ T.ge x (i 0); T.lt x (i 65536) ]
      (T.and_ [ T.ge (T.idiv x (i 256)) (i 0); T.lt (T.idiv x (i 256)) (i 256) ]);
    (* Injectivity of the byte decomposition (the unambiguity lemma of the
       wire format). *)
    of_solver "decomposition is injective"
      ~hyps:
        [
          T.ge x (i 0);
          T.lt x (i 65536);
          T.ge y (i 0);
          T.lt y (i 65536);
          T.eq (T.idiv x (i 256)) (T.idiv y (i 256));
          T.eq (T.imod x (i 256)) (T.imod y (i 256));
        ]
      (T.eq x y);
    (* The same facts bit-style, via by(bit_vector). *)
    of_mode "bv: (x & 255) | ((x >> 8) << 8) == x" "bit_vector"
      (Verus.Modes.prove_bit_vector
         (T.eq (bor (band x (i 255)) (bshl (bshr x 8) 8)) x));
    of_mode "bv: low byte < 256" "bit_vector"
      (Verus.Modes.prove_bit_vector (T.lt (band x (i 255)) (i 256)));
    (* Tag dispatch: distinct tags keep encodings distinct at byte 0
       (injectivity of the tagged-union header). *)
    of_solver "tag dispatch injective"
      ~hyps:[ T.ge x (i 0); T.lt x (i 256); T.ge y (i 0); T.lt y (i 256); T.not_ (T.eq x y) ]
      (T.not_ (T.eq (T.imod x (i 256)) (T.imod y (i 256))));
  ]

let all_proved obs = List.for_all (fun o -> o.proved) obs
