(** Crash-safe persistence for IronKV hosts.

    Every mutation a host acknowledges — store writes, at-most-once
    reply-cache entries, shipped shard installs, range drops and
    delegation-epoch bumps — is first marshalled into a record and
    appended, under group commit, to a per-host {!Plog.Multilog} over
    simulated PMEM: log 0 holds the data plane ({!op} records), log 1 the
    routing plane ({!route} records).  [Multilog.append_all]'s atomic
    multi-append is the commit point, so a delegation's data-plane and
    routing-plane effects persist all-or-nothing.

    The recovery obligation (pinned by the crash-point sweep and the
    storm tests, and argued in DESIGN.md "Durability"): after any crash,
    {!recover} yields exactly the records of some group-commit boundary —
    a committed prefix, never a torn batch — and replaying them rebuilds
    the host's kv map, reply cache and epochs to that boundary's state.
    Acknowledgements are only released after {!sync} succeeds, so no
    acknowledged write is ever lost.

    Pending batches are staged through {!Valloc.Alloc} blocks (write-
    buffer accounting on the verified allocator), released on commit. *)

type op =
  | Set_op of { client : int; seq : int; key : int; value : string }
      (** a Set executed: store write + reply-cache entry *)
  | Cache_op of { client : int; seq : int; key : int; value : string option }
      (** a Get executed: reply-cache entry only *)
  | Cache_merge of { cache : (int * (int * int * string option)) list }
      (** reply cache shipped in an incoming Delegate, merged by every
          receiver (highest seq wins) *)
  | Install of { src : int; epoch : int; kvs : (int * string) list }
      (** this host was the destination of grant [(src, epoch)] and
          installed the shipped shard; replay also rebuilds the
          applied-grant set that dedups retransmitted Delegates *)
  | Drop_range of { lo : int; hi : int }
      (** an outgoing delegation removed the keys in [lo, hi) *)
  | Grant_out of {
      lo : int;
      hi : int;
      dest : int;
      epoch : int;
      kvs : (int * string) list;
      cache : (int * (int * int * string option)) list;
    }  (** an outgoing grant not yet acknowledged by its destination;
          persisted with its payload so a recovered grantor resumes
          retransmitting until the destination's durable {!Grant_done} *)
  | Grant_done of { epoch : int }
      (** the destination acknowledged grant [epoch] *)

type route = {
  r_lo : int;
  r_hi : int;
  r_dest : int;
  r_epoch : int;
  r_applied : bool;  (** did the grant win the monotone-epoch race? *)
}

type t

type sync_outcome =
  | Synced of int  (** records committed by this group commit *)
  | Power_failed
      (** the commit flush never reached media (torn write / power cut):
          the batch is lost and the host must be treated as crashed —
          nothing may be acknowledged *)
  | Failed of string  (** hard error, e.g. the log region is exhausted *)

val format : Plog.Pmem.t -> unit
(** Initialize an empty record store over the whole device. *)

val attach : ?group:int -> ?alloc:Valloc.Alloc.t -> Plog.Pmem.t -> (t, string) result
(** Attach to a formatted device without replaying (fresh host).
    [group] (default 4) is the group-commit threshold: {!sync} is forced
    by hosts once this many records are pending. *)

val recover :
  ?group:int ->
  ?alloc:Valloc.Alloc.t ->
  ?faults:Vbase.Faultplan.t ->
  Plog.Pmem.t ->
  (t * op list * route list, string) result
(** Crash recovery: attach to the newest valid commit header and parse
    the committed prefix of both logs back into replayable records.  The
    ["host.crash.recovery"] site of [faults] injects the double-fault
    case — a crash during recovery reboots and restarts recovery (replay
    is read-only, so this is always safe; the tests pin it). *)

val log_op : t -> op -> unit
val log_route : t -> route -> unit
(** Stage a record into the pending group-commit batch. *)

val sync : t -> sync_outcome
(** Group commit: atomically append the pending batch (both planes) and
    flush.  [Synced 0] when nothing is pending.  See {!sync_outcome} for
    the crash contract. *)

val group : t -> int
val pending : t -> int
(** Records staged but not yet committed (lost on crash). *)

val committed : t -> int
(** Records committed since attach/recover. *)

val syncs : t -> int
(** Group commits that reached media since attach/recover. *)

val crash_during_recovery_site : string
(** ["host.crash.recovery"]. *)
