type style = [ `Inplace | `Copying ]

(* Outgoing traffic deferred until the pending durable batch commits:
   replies acknowledge state, forwards and delegations must stay ordered
   behind them on the sequenced channels. *)
type deferred = D_send of int * bytes | D_seq of int * bytes

type grant = {
  g_lo : int;
  g_hi : int;
  g_dest : int;
  g_epoch : int;
  g_kvs : (int * string) list;
  g_cache : (int * (int * int * string option)) list;
}

(* Retransmit outstanding (unacknowledged) grants every this many group
   commits.  Duplicates are cheap — the destination dedups by (src, epoch)
   and just re-acks — while a lost shard (destination crashed between
   channel delivery and group commit) is unrecoverable without them. *)
let retransmit_every = 4

type t = {
  style : style;
  id : int;
  hosts : int;
  mutable store : (int, string) Hashtbl.t;
  mutable dmap : Delegation_map.t;
  mutable cache : (int, int * int * string option) Hashtbl.t;
      (* at-most-once reply cache: client -> (highest seq executed, key,
         reply value).  Keeping the reply (not just the seq tombstone)
         makes retransmitted requests idempotent: the cached reply is
         re-sent instead of re-executing.  The cache rides along with
         every Delegate message, so it survives re-delegation. *)
  mutable max_epoch : int;
      (* highest delegation epoch seen; stale grants (epoch <= max_epoch,
         not addressed to us) are ignored so routing views only move
         forward along each range's delegation chain — the property that
         makes forwarding chains terminate under reordered broadcasts *)
  outstanding : (int, grant) Hashtbl.t;
      (* epoch -> grant this host issued whose destination has not yet
         durably acknowledged it.  "Delivered" on the sequenced channel is
         not "persisted": the destination may crash between receiving the
         Delegate and committing the Install, losing the shard forever
         unless the grantor keeps retransmitting.  Epochs are monotone per
         grantor, so our own epoch is a unique key here. *)
  applied_grants : (int * int, unit) Hashtbl.t;
      (* (grantor, epoch) pairs whose shard this host (as destination) has
         installed.  Exact-set, not a high-water mark: FIFO channels can
         deliver grant n+1 live after grant n was consumed by a dead
         process, so a high-water mark would wrongly dedup the unapplied
         retransmission of n. *)
  mutable ticks : int; (* group commits, drives grant retransmission *)
  durable : Durable.t option;
      (* when present, every mutation is logged and every outgoing send
         is deferred until the batch group-commits: nothing observable
         leaves the host before the state it reflects is on media *)
  mutable pending_out : deferred list; (* reversed *)
  mutable dead : bool;
      (* simulated power failure detected at a commit flush: the process
         is gone until the harness runs recovery *)
}

let create ?durable ~style ~id ~hosts () =
  {
    style;
    id;
    hosts;
    store = Hashtbl.create 1024;
    dmap = Delegation_map.create ~default_host:0;
    cache = Hashtbl.create 64;
    max_epoch = 0;
    outstanding = Hashtbl.create 8;
    applied_grants = Hashtbl.create 8;
    ticks = 0;
    durable;
    pending_out = [];
    dead = false;
  }

let owns t key = Delegation_map.get t.dmap key = t.id
let store_size t = Hashtbl.length t.store
let dump t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
let cache_snapshot t = Hashtbl.fold (fun c e acc -> (c, e) :: acc) t.cache []
let max_epoch t = t.max_epoch
let is_dead t = t.dead
let durable t = t.durable
let outstanding_grants t = Hashtbl.length t.outstanding

let log_op t o = match t.durable with Some d -> Durable.log_op d o | None -> ()
let log_route t r = match t.durable with Some d -> Durable.log_route d r | None -> ()

(* The IronFleet-style handler path: rebuild the mutable structures instead
   of updating them in place (the "replacing an entire data structure"
   pattern §4.2.1 describes). *)
let copy_structures t =
  let store' = Hashtbl.copy t.store in
  let cache' = Hashtbl.copy t.cache in
  let dmap' = Delegation_map.create ~default_host:0 in
  List.iter
    (fun (lo, h) -> Delegation_map.set_range dmap' ~lo ~hi:Delegation_map.max_key ~host:h)
    (Delegation_map.to_alist t.dmap);
  t.store <- store';
  t.cache <- cache';
  t.dmap <- dmap'

let post t net d =
  if t.durable <> None then t.pending_out <- d :: t.pending_out
  else
    match d with
    | D_send (dst, raw) -> Network.send net ~src:t.id ~dst raw
    | D_seq (dst, raw) -> Network.send_seq net ~src:t.id ~dst raw

let reply t net ~client ~seq ~key value =
  post t net (D_send (client, Message.to_bytes (Message.Reply { client; seq; key; value })))

(* At-most-once execution with reply retransmission: fresh requests run
   [execute] and cache the reply; a duplicate of the latest request
   re-sends the cached reply; anything older is dropped (the client has
   already moved on, so no reply can be expected for it).  [log] records
   a fresh execution into the durable batch; replies — including cached
   resends, whose entry may itself still be pending — are deferred until
   that batch commits, so an acknowledgement never outruns its record. *)
let answer t net ~client ~seq ~key execute log =
  match Hashtbl.find_opt t.cache client with
  | Some (s, _, _) when seq < s -> () (* stale duplicate: drop *)
  | Some (s, k, v) when seq = s -> reply t net ~client ~seq ~key:k v (* idempotent resend *)
  | _ ->
    let value = execute () in
    Hashtbl.replace t.cache client (seq, key, value);
    log value;
    reply t net ~client ~seq ~key value

(* Merge a shipped reply cache: higher sequence numbers win.  Every host
   merges (not just the delegation destination): a request can be
   forwarded through any stale host, so the suppression state must be
   monotone everywhere it might be consulted later. *)
let merge_cache t entries =
  List.iter
    (fun (client, ((seq, _, _) as entry)) ->
      match Hashtbl.find_opt t.cache client with
      | Some (s, _, _) when s >= seq -> ()
      | _ -> Hashtbl.replace t.cache client entry)
    entries

let forward t net ~dst raw = post t net (D_seq (dst, raw))

let delegate_msg t (g : grant) =
  Message.to_bytes
    (Message.Delegate
       {
         src = t.id;
         lo = g.g_lo;
         hi = g.g_hi;
         dest = g.g_dest;
         epoch = g.g_epoch;
         kvs = g.g_kvs;
         cache = g.g_cache;
       })

(* Group commit: flush the pending durable batch; only a successful
   commit releases the deferred sends (in order — per-channel ordering
   between forwards and delegations is what keeps routing sane).  A
   power failure at the flush kills the host instead: the batch and
   every acknowledgement riding on it are gone, which is precisely why
   no client saw them yet.  Every few commits the host also retransmits
   its outstanding grants — all of them already durable (Grant_out), so
   they ride out with this batch without new records. *)
let sync t net =
  if t.dead then `Crashed
  else
    match t.durable with
    | None -> `Ok 0
    | Some d -> (
      t.ticks <- t.ticks + 1;
      if t.ticks mod retransmit_every = 0 then
        Hashtbl.iter
          (fun _ g -> post t net (D_seq (g.g_dest, delegate_msg t g)))
          t.outstanding;
      match Durable.sync d with
      | Durable.Synced _ ->
        let outs = List.rev t.pending_out in
        t.pending_out <- [];
        List.iter
          (function
            | D_send (dst, raw) -> Network.send net ~src:t.id ~dst raw
            | D_seq (dst, raw) -> Network.send_seq net ~src:t.id ~dst raw)
          outs;
        `Ok (List.length outs)
      | Durable.Power_failed ->
        t.dead <- true;
        t.pending_out <- [];
        `Crashed
      | Durable.Failed e -> failwith ("Host.sync: " ^ e))

let maybe_sync t net =
  match t.durable with
  | Some d when (not t.dead) && Durable.pending d >= Durable.group d ->
    ignore (sync t net)
  | _ -> ()

let handle t net raw =
  if t.dead then () (* a powered-off host processes nothing *)
  else begin
    (match Message.of_bytes raw with
    | None -> () (* malformed: the verified parser rejects, we drop *)
    | Some msg -> (
      if t.style = `Copying then copy_structures t;
      match msg with
      | Message.Get { client; seq; key } ->
        if owns t key then
          answer t net ~client ~seq ~key
            (fun () -> Hashtbl.find_opt t.store key)
            (fun value -> log_op t (Durable.Cache_op { client; seq; key; value }))
        else forward t net ~dst:(Delegation_map.get t.dmap key) raw
      | Message.Set { client; seq; key; value } ->
        if owns t key then
          answer t net ~client ~seq ~key
            (fun () ->
              Hashtbl.replace t.store key value;
              Some value)
            (fun _ -> log_op t (Durable.Set_op { client; seq; key; value }))
        else forward t net ~dst:(Delegation_map.get t.dmap key) raw
      | Message.Delegate { src; lo; hi; dest; epoch; kvs; cache } ->
        (* Everyone merges the shipped reply cache (monotone, always
           safe).  The destination installs the shipped shard exactly
           once per (grantor, epoch) — retransmissions are deduped by
           the durable applied-grant set — and (re-)acknowledges to the
           grantor; the Ack is a deferred send, so it leaves only after
           the Install record is on media.  Non-destinations treat the
           grant as a routing hint under the monotone-epoch rule. *)
        merge_cache t cache;
        if cache <> [] then log_op t (Durable.Cache_merge { cache });
        if dest = t.id then begin
          if not (Hashtbl.mem t.applied_grants (src, epoch)) then begin
            Hashtbl.replace t.applied_grants (src, epoch) ();
            Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
            List.iter (fun (k, v) -> Hashtbl.replace t.store k v) kvs;
            t.max_epoch <- max t.max_epoch epoch;
            log_op t (Durable.Install { src; epoch; kvs });
            log_route t
              { Durable.r_lo = lo; r_hi = hi; r_dest = dest; r_epoch = epoch; r_applied = true }
          end;
          post t net (D_seq (src, Message.to_bytes (Message.Ack { src = t.id; epoch })))
        end
        else begin
          let applied = epoch > t.max_epoch in
          if applied then Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
          t.max_epoch <- max t.max_epoch epoch;
          log_route t
            { Durable.r_lo = lo; r_hi = hi; r_dest = dest; r_epoch = epoch; r_applied = applied }
        end
      | Message.Ack { epoch; _ } ->
        if Hashtbl.mem t.outstanding epoch then begin
          Hashtbl.remove t.outstanding epoch;
          log_op t (Durable.Grant_done { epoch })
        end
      | Message.Reply _ -> () (* hosts do not receive client replies *)));
    maybe_sync t net
  end

let delegate t net ~lo ~hi ~dest =
  if t.dead then invalid_arg "Host.delegate: host is crashed";
  if not (owns t lo) then invalid_arg "Host.delegate: does not own range start";
  (* Only the contiguously-owned prefix of [lo, hi) may be delegated —
     keys governed by other hosts cannot be remapped without their data
     (the differential test caught exactly this). *)
  let hi =
    List.fold_left
      (fun hi (pk, ph) -> if pk > lo && pk < hi && ph <> t.id then pk else hi)
      hi
      (Delegation_map.to_alist t.dmap)
  in
  if lo < hi && dest <> t.id then begin
    let kvs =
      Hashtbl.fold (fun k v acc -> if k >= lo && k < hi then (k, v) :: acc else acc) t.store []
    in
    List.iter (fun (k, _) -> Hashtbl.remove t.store k) kvs;
    Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
    let epoch = t.max_epoch + 1 in
    t.max_epoch <- epoch;
    let cache = cache_snapshot t in
    let g = { g_lo = lo; g_hi = hi; g_dest = dest; g_epoch = epoch; g_kvs = kvs; g_cache = cache } in
    Hashtbl.replace t.outstanding epoch g;
    log_op t (Durable.Drop_range { lo; hi });
    log_op t (Durable.Grant_out { lo; hi; dest; epoch; kvs; cache });
    log_route t
      { Durable.r_lo = lo; r_hi = hi; r_dest = dest; r_epoch = epoch; r_applied = true };
    (* Tell every other host (including dest, which installs the data).
       Delegate messages travel over the sequenced inter-host channels:
       a dropped / duplicated / reordered Delegate would lose or resurrect
       shard data, which the channel abstraction rules out.  On a durable
       host the broadcast is deferred behind the Drop_range/Grant_out
       records: peers may only learn of a grant the grantor is guaranteed
       to remember across a crash — and the grantor keeps retransmitting
       to dest until the shard is durably acknowledged. *)
    let raw = delegate_msg t g in
    for peer = 0 to t.hosts - 1 do
      if peer <> t.id then post t net (D_seq (peer, raw))
    done
  end

(* --- recovery --------------------------------------------------------- *)

(* Rebuild a host from the committed record prefix: fold the data-plane
   records over an empty store/cache, then the routing-plane records over
   an empty delegation view.  The planes are independent by construction
   (no op record consults the delegation map), so replaying them
   per-plane in log order reproduces the exact pre-crash committed state;
   the atomic multi-append guarantees the two prefixes are from the same
   group-commit boundary. *)
let apply_op t (o : Durable.op) =
  match o with
  | Durable.Set_op { client; seq; key; value } ->
    Hashtbl.replace t.store key value;
    Hashtbl.replace t.cache client (seq, key, Some value)
  | Durable.Cache_op { client; seq; key; value } ->
    Hashtbl.replace t.cache client (seq, key, value)
  | Durable.Cache_merge { cache } -> merge_cache t cache
  | Durable.Install { src; epoch; kvs } ->
    Hashtbl.replace t.applied_grants (src, epoch) ();
    List.iter (fun (k, v) -> Hashtbl.replace t.store k v) kvs
  | Durable.Drop_range { lo; hi } ->
    let doomed =
      Hashtbl.fold (fun k _ acc -> if k >= lo && k < hi then k :: acc else acc) t.store []
    in
    List.iter (Hashtbl.remove t.store) doomed
  | Durable.Grant_out { lo; hi; dest; epoch; kvs; cache } ->
    Hashtbl.replace t.outstanding epoch
      { g_lo = lo; g_hi = hi; g_dest = dest; g_epoch = epoch; g_kvs = kvs; g_cache = cache }
  | Durable.Grant_done { epoch } -> Hashtbl.remove t.outstanding epoch

let apply_route t (r : Durable.route) =
  if r.Durable.r_applied then
    Delegation_map.set_range t.dmap ~lo:r.Durable.r_lo ~hi:r.Durable.r_hi
      ~host:r.Durable.r_dest;
  t.max_epoch <- max t.max_epoch r.Durable.r_epoch

let of_replay ~style ~id ~hosts ~durable (ops, routes) =
  let t = create ~durable ~style ~id ~hosts () in
  List.iter (apply_op t) ops;
  List.iter (apply_route t) routes;
  t
