type style = [ `Inplace | `Copying ]

type t = {
  style : style;
  id : int;
  hosts : int;
  mutable store : (int, string) Hashtbl.t;
  mutable dmap : Delegation_map.t;
  mutable tombstones : (int, int) Hashtbl.t; (* client -> highest seq seen *)
}

let create ~style ~id ~hosts =
  {
    style;
    id;
    hosts;
    store = Hashtbl.create 1024;
    dmap = Delegation_map.create ~default_host:0;
    tombstones = Hashtbl.create 64;
  }

let owns t key = Delegation_map.get t.dmap key = t.id
let store_size t = Hashtbl.length t.store
let dump t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []

(* The IronFleet-style handler path: rebuild the mutable structures instead
   of updating them in place (the "replacing an entire data structure"
   pattern §4.2.1 describes). *)
let copy_structures t =
  let store' = Hashtbl.copy t.store in
  let tomb' = Hashtbl.copy t.tombstones in
  let dmap' = Delegation_map.create ~default_host:0 in
  List.iter
    (fun (lo, h) -> Delegation_map.set_range dmap' ~lo ~hi:Delegation_map.max_key ~host:h)
    (Delegation_map.to_alist t.dmap);
  t.store <- store';
  t.tombstones <- tomb';
  t.dmap <- dmap'

(* At-most-once: true when the request is fresh (and records it). *)
let fresh_request t ~client ~seq =
  match Hashtbl.find_opt t.tombstones client with
  | Some s when s >= seq -> false
  | _ ->
    Hashtbl.replace t.tombstones client seq;
    true

let reply net ~client ~seq ~key value =
  Network.send net ~dst:client (Message.to_bytes (Message.Reply { client; seq; key; value }))

let handle t net raw =
  match Message.of_bytes raw with
  | None -> () (* malformed: the verified parser rejects, we drop *)
  | Some msg -> (
    if t.style = `Copying then copy_structures t;
    match msg with
    | Message.Get { client; seq; key } ->
      if owns t key then begin
        if fresh_request t ~client ~seq then
          reply net ~client ~seq ~key (Hashtbl.find_opt t.store key)
      end
      else Network.send net ~dst:(Delegation_map.get t.dmap key) raw
    | Message.Set { client; seq; key; value } ->
      if owns t key then begin
        if fresh_request t ~client ~seq then begin
          Hashtbl.replace t.store key value;
          reply net ~client ~seq ~key (Some value)
        end
      end
      else Network.send net ~dst:(Delegation_map.get t.dmap key) raw
    | Message.Delegate { lo; hi; dest; kvs } ->
      (* Everyone updates their delegation map; the destination installs
         the shipped contents; the source (handled in [delegate]) already
         dropped its copies. *)
      Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
      if dest = t.id then List.iter (fun (k, v) -> Hashtbl.replace t.store k v) kvs
    | Message.Reply _ -> () (* hosts do not receive client replies *))

let delegate t net ~lo ~hi ~dest =
  if not (owns t lo) then invalid_arg "Host.delegate: does not own range start";
  (* Only the contiguously-owned prefix of [lo, hi) may be delegated —
     keys governed by other hosts cannot be remapped without their data
     (the differential test caught exactly this). *)
  let hi =
    List.fold_left
      (fun hi (pk, ph) -> if pk > lo && pk < hi && ph <> t.id then pk else hi)
      hi
      (Delegation_map.to_alist t.dmap)
  in
  if lo < hi && dest <> t.id then begin
    let kvs =
      Hashtbl.fold (fun k v acc -> if k >= lo && k < hi then (k, v) :: acc else acc) t.store []
    in
    List.iter (fun (k, _) -> Hashtbl.remove t.store k) kvs;
    Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
    (* Tell every other host (including dest, which installs the data). *)
    for peer = 0 to t.hosts - 1 do
      if peer <> t.id then
        Network.send net ~dst:peer (Message.to_bytes (Message.Delegate { lo; hi; dest; kvs }))
    done
  end
