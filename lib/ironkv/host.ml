type style = [ `Inplace | `Copying ]

type t = {
  style : style;
  id : int;
  hosts : int;
  mutable store : (int, string) Hashtbl.t;
  mutable dmap : Delegation_map.t;
  mutable cache : (int, int * int * string option) Hashtbl.t;
      (* at-most-once reply cache: client -> (highest seq executed, key,
         reply value).  Keeping the reply (not just the seq tombstone)
         makes retransmitted requests idempotent: the cached reply is
         re-sent instead of re-executing.  The cache rides along with
         every Delegate message, so it survives re-delegation. *)
  mutable max_epoch : int;
      (* highest delegation epoch seen; stale grants (epoch <= max_epoch,
         not addressed to us) are ignored so routing views only move
         forward along each range's delegation chain — the property that
         makes forwarding chains terminate under reordered broadcasts *)
}

let create ~style ~id ~hosts =
  {
    style;
    id;
    hosts;
    store = Hashtbl.create 1024;
    dmap = Delegation_map.create ~default_host:0;
    cache = Hashtbl.create 64;
    max_epoch = 0;
  }

let owns t key = Delegation_map.get t.dmap key = t.id
let store_size t = Hashtbl.length t.store
let dump t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
let cache_snapshot t = Hashtbl.fold (fun c e acc -> (c, e) :: acc) t.cache []

(* The IronFleet-style handler path: rebuild the mutable structures instead
   of updating them in place (the "replacing an entire data structure"
   pattern §4.2.1 describes). *)
let copy_structures t =
  let store' = Hashtbl.copy t.store in
  let cache' = Hashtbl.copy t.cache in
  let dmap' = Delegation_map.create ~default_host:0 in
  List.iter
    (fun (lo, h) -> Delegation_map.set_range dmap' ~lo ~hi:Delegation_map.max_key ~host:h)
    (Delegation_map.to_alist t.dmap);
  t.store <- store';
  t.cache <- cache';
  t.dmap <- dmap'

let reply t net ~client ~seq ~key value =
  Network.send net ~src:t.id ~dst:client
    (Message.to_bytes (Message.Reply { client; seq; key; value }))

(* At-most-once execution with reply retransmission: fresh requests run
   [execute] and cache the reply; a duplicate of the latest request
   re-sends the cached reply; anything older is dropped (the client has
   already moved on, so no reply can be expected for it). *)
let answer t net ~client ~seq ~key execute =
  match Hashtbl.find_opt t.cache client with
  | Some (s, _, _) when seq < s -> () (* stale duplicate: drop *)
  | Some (s, k, v) when seq = s -> reply t net ~client ~seq ~key:k v (* idempotent resend *)
  | _ ->
    let value = execute () in
    Hashtbl.replace t.cache client (seq, key, value);
    reply t net ~client ~seq ~key value

(* Merge a shipped reply cache: higher sequence numbers win.  Every host
   merges (not just the delegation destination): a request can be
   forwarded through any stale host, so the suppression state must be
   monotone everywhere it might be consulted later. *)
let merge_cache t entries =
  List.iter
    (fun (client, ((seq, _, _) as entry)) ->
      match Hashtbl.find_opt t.cache client with
      | Some (s, _, _) when s >= seq -> ()
      | _ -> Hashtbl.replace t.cache client entry)
    entries

let forward t net ~dst raw = Network.send_seq net ~src:t.id ~dst raw

let handle t net raw =
  match Message.of_bytes raw with
  | None -> () (* malformed: the verified parser rejects, we drop *)
  | Some msg -> (
    if t.style = `Copying then copy_structures t;
    match msg with
    | Message.Get { client; seq; key } ->
      if owns t key then
        answer t net ~client ~seq ~key (fun () -> Hashtbl.find_opt t.store key)
      else forward t net ~dst:(Delegation_map.get t.dmap key) raw
    | Message.Set { client; seq; key; value } ->
      if owns t key then
        answer t net ~client ~seq ~key (fun () ->
            Hashtbl.replace t.store key value;
            Some value)
      else forward t net ~dst:(Delegation_map.get t.dmap key) raw
    | Message.Delegate { lo; hi; dest; epoch; kvs; cache } ->
      (* Everyone merges the shipped reply cache (monotone, always safe);
         the routing update applies only if the grant is newer than
         anything seen, or we are its destination (a host's own grant is
         always the newest for its range — see message.mli).  The
         destination installs the shipped contents; the source (handled
         in [delegate]) already dropped its copies. *)
      merge_cache t cache;
      if epoch > t.max_epoch || dest = t.id then
        Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
      t.max_epoch <- max t.max_epoch epoch;
      if dest = t.id then List.iter (fun (k, v) -> Hashtbl.replace t.store k v) kvs
    | Message.Reply _ -> () (* hosts do not receive client replies *))

let delegate t net ~lo ~hi ~dest =
  if not (owns t lo) then invalid_arg "Host.delegate: does not own range start";
  (* Only the contiguously-owned prefix of [lo, hi) may be delegated —
     keys governed by other hosts cannot be remapped without their data
     (the differential test caught exactly this). *)
  let hi =
    List.fold_left
      (fun hi (pk, ph) -> if pk > lo && pk < hi && ph <> t.id then pk else hi)
      hi
      (Delegation_map.to_alist t.dmap)
  in
  if lo < hi && dest <> t.id then begin
    let kvs =
      Hashtbl.fold (fun k v acc -> if k >= lo && k < hi then (k, v) :: acc else acc) t.store []
    in
    List.iter (fun (k, _) -> Hashtbl.remove t.store k) kvs;
    Delegation_map.set_range t.dmap ~lo ~hi ~host:dest;
    let epoch = t.max_epoch + 1 in
    t.max_epoch <- epoch;
    let cache = cache_snapshot t in
    (* Tell every other host (including dest, which installs the data).
       Delegate messages travel over the sequenced inter-host channels:
       a dropped / duplicated / reordered Delegate would lose or resurrect
       shard data, which the channel abstraction rules out. *)
    for peer = 0 to t.hosts - 1 do
      if peer <> t.id then
        Network.send_seq net ~src:t.id ~dst:peer
          (Message.to_bytes (Message.Delegate { lo; hi; dest; epoch; kvs; cache }))
    done
  end
