type dist = [ `Uniform | `Zipf of float ]

type durability = {
  du_group : int; (* group-commit threshold (records per flush) *)
  du_mem_bytes : int; (* per-host simulated PMEM device size *)
}

let default_durability = { du_group = 4; du_mem_bytes = 1 lsl 23 }

type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
  retransmissions : int;
  net_stats : (string * int) list;
  lat_p50_ms : float;
  lat_p99_ms : float;
  crashes : int;
  recoveries : int;
  recovery_s : float;
  replayed : int;
  commits : int;
}

type storm_report = {
  sr_ops : int;
  sr_crashes : int;
  sr_torn : int;
  sr_partitions : int;
  sr_recoveries : int;
  sr_recovery_s : float;
  sr_replayed : int;
  sr_readback : int;
  sr_retransmissions : int;
}

exception Client_timeout of string

let crash_site = "host.crash"
let partition_site = "net.partition"

(* --- cluster ----------------------------------------------------------- *)

(* A node is a host plus (when durable) its simulated PMEM device.  The
   host object is replaced wholesale on crash recovery — everything not
   rebuilt from the device's committed log prefix is gone, which is the
   point. *)
type node = {
  n_id : int;
  mutable n_host : Host.t;
  n_mem : Plog.Pmem.t option;
  n_group : int;
  mutable n_recoveries : int;
  mutable n_last_epoch : int;
      (* max_epoch observed at the last recovery: recovery must never
         regress it (monotone epochs are durable state) *)
}

type cluster = {
  c_net : Network.t;
  c_style : Host.style;
  c_plan : Vbase.Faultplan.t;
  c_nodes : node array;
  mutable c_storm : bool; (* are the crash/partition sites live? *)
  mutable c_partition_left : int; (* polls until the current partition heals *)
  mutable c_crashes : int;
  mutable c_torn : int;
  mutable c_partitions : int;
  mutable c_recoveries : int;
  mutable c_recovery_s : float;
  mutable c_replayed : int;
  mutable c_commits : int; (* group commits by hosts since retired *)
}

let mk_alloc () = Valloc.Alloc.create ~checked:true (Valloc.Os_mem.create ())

(* Crash + recover one node: drop the volatile PMEM view, re-attach to
   the committed prefix, and rebuild the host by replay.  Wall-clock and
   replayed-record accounting feed the bench recovery table; the epoch
   pin turns any monotonicity regression into a hard failure. *)
let crash_node cl node =
  match node.n_mem with
  | None -> () (* volatile hosts have no crash story in this harness *)
  | Some mem ->
    (match Host.durable node.n_host with
    | Some d -> cl.c_commits <- cl.c_commits + Durable.syncs d
    | None -> ());
    let t0 = Unix.gettimeofday () in
    Plog.Pmem.crash mem;
    match Durable.recover ~group:node.n_group ~alloc:(mk_alloc ()) ~faults:cl.c_plan mem with
    | Error e -> failwith (Printf.sprintf "host %d: recovery failed: %s" node.n_id e)
    | Ok (d, ops, routes) ->
      let host =
        Host.of_replay ~style:cl.c_style ~id:node.n_id ~hosts:(Array.length cl.c_nodes)
          ~durable:d (ops, routes)
      in
      let epoch = Host.max_epoch host in
      if epoch < node.n_last_epoch then
        failwith
          (Printf.sprintf "host %d: delegation epoch regressed across recovery (%d < %d)"
             node.n_id epoch node.n_last_epoch);
      node.n_last_epoch <- epoch;
      node.n_host <- host;
      node.n_recoveries <- node.n_recoveries + 1;
      cl.c_recoveries <- cl.c_recoveries + 1;
      cl.c_replayed <- cl.c_replayed + List.length ops + List.length routes;
      cl.c_recovery_s <- cl.c_recovery_s +. (Unix.gettimeofday () -. t0)

(* Deliver every pending host-bound message (hosts may generate more
   traffic while handling, e.g. forwards), then group-commit each host so
   its deferred sends go out.  A commit that hits a simulated power
   failure turns into a crash + recovery on the spot.  Messages under an
   injected delay stay queued; each sweep ages them by one poll, so
   repeated drains (the client retry loop) eventually deliver
   everything. *)
let drain cl =
  let net = cl.c_net in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun node ->
        let more = ref true in
        while !more do
          match Network.recv net ~me:node.n_id with
          | Some raw ->
            Host.handle node.n_host net raw;
            progress := true
          | None -> more := false
        done;
        match Host.sync node.n_host net with
        | `Ok n -> if n > 0 then progress := true
        | `Crashed ->
          cl.c_torn <- cl.c_torn + 1;
          crash_node cl node;
          progress := true)
      cl.c_nodes
  done

(* One storm step, consulted once per client poll round (the simulator's
   clock): manage the current partition's countdown, maybe open a new
   one around a drawn victim host, maybe crash a drawn host outright. *)
let storm_tick cl =
  if cl.c_storm then begin
    let nhosts = Array.length cl.c_nodes in
    if cl.c_partition_left > 0 then begin
      cl.c_partition_left <- cl.c_partition_left - 1;
      if cl.c_partition_left = 0 then Network.heal_partition cl.c_net
    end
    else if Vbase.Faultplan.fires cl.c_plan partition_site then begin
      let victim = Vbase.Faultplan.draw cl.c_plan partition_site nhosts in
      Network.set_partition cl.c_net [ victim ];
      cl.c_partition_left <- 2 + Vbase.Faultplan.draw cl.c_plan partition_site 30;
      cl.c_partitions <- cl.c_partitions + 1
    end;
    if Vbase.Faultplan.fires cl.c_plan crash_site then begin
      let victim = Vbase.Faultplan.draw cl.c_plan crash_site nhosts in
      let node = cl.c_nodes.(victim) in
      if node.n_mem <> None then begin
        cl.c_crashes <- cl.c_crashes + 1;
        crash_node cl node
      end
    end
  end

let end_storm cl =
  cl.c_storm <- false;
  Vbase.Faultplan.set_prob cl.c_plan crash_site ~pct:0;
  Vbase.Faultplan.set_prob cl.c_plan partition_site ~pct:0;
  Vbase.Faultplan.set_prob cl.c_plan "pmem.torn" ~pct:0;
  if cl.c_partition_left > 0 then begin
    Network.heal_partition cl.c_net;
    cl.c_partition_left <- 0
  end;
  drain cl

(* Pull the reply for [seq] out of [me]'s mailbox, discarding stale
   duplicate replies (retransmissions make the host re-send cached
   replies; the client has already consumed one copy and moved on). *)
let rec recv_reply net ~me ~seq =
  match Network.recv net ~me with
  | None -> None
  | Some raw -> (
    match Message.of_bytes raw with
    | Some (Message.Reply { seq = s; key; value; _ }) when s = seq -> Some (key, value)
    | _ -> recv_reply net ~me ~seq (* stale / unexpected: drop, keep looking *))

(* One closed-loop client request with retransmission: send, poll with a
   timeout (measured in drain rounds, the simulator's clock), and on
   expiry retransmit the same request — same sequence number — doubling
   the timeout each attempt (exponential backoff, capped).  The host's
   at-most-once reply cache absorbs the duplicates and re-sends the
   cached reply, so retry under loss terminates without re-execution.
   Each poll round also advances the storm: crashes and partitions strike
   while the request is in flight. *)
let request_reply ?(retransmit_counter = ref 0) cl ~client ~dst ~seq msg =
  let net = cl.c_net in
  let raw = Message.to_bytes msg in
  Network.send net ~src:client ~dst raw;
  let max_attempts = 14 in
  let rec poll k =
    storm_tick cl;
    drain cl;
    match recv_reply net ~me:client ~seq with
    | Some r -> Some r
    | None -> if k > 1 then poll (k - 1) else None
  in
  let rec attempt n ~timeout =
    match poll timeout with
    | Some r -> r
    | None ->
      if n >= max_attempts then
        raise
          (Client_timeout
             (Printf.sprintf "client %d: no reply for seq %d after %d retransmissions" client seq
                n))
      else begin
        incr retransmit_counter;
        Network.send net ~src:client ~dst raw;
        attempt (n + 1) ~timeout:(min 64 (timeout * 2))
      end
  in
  attempt 0 ~timeout:2

let make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct =
  let plan = Vbase.Faultplan.create ~seed:fault_seed () in
  Vbase.Faultplan.set_prob plan "net.drop" ~pct:drop_pct;
  Vbase.Faultplan.set_prob plan "net.dup" ~pct:net_dup_pct;
  Vbase.Faultplan.set_prob plan "net.reorder" ~pct:reorder_pct;
  Vbase.Faultplan.set_prob plan "net.delay" ~pct:delay_pct;
  plan

let setup ?durability ~style ~hosts:nhosts ~clients:nclients ~keys ~faults () =
  let net = Network.create ~endpoints:(nhosts + nclients) ~faults ~sequenced:true () in
  let mk_node id =
    match durability with
    | None ->
      {
        n_id = id;
        n_host = Host.create ~style ~id ~hosts:nhosts ();
        n_mem = None;
        n_group = 0;
        n_recoveries = 0;
        n_last_epoch = 0;
      }
    | Some { du_group; du_mem_bytes } -> (
      let mem = Plog.Pmem.create ~faults ~size:du_mem_bytes () in
      Durable.format mem;
      match Durable.attach ~group:du_group ~alloc:(mk_alloc ()) mem with
      | Error e -> failwith ("Workload.setup: " ^ e)
      | Ok d ->
        {
          n_id = id;
          n_host = Host.create ~durable:d ~style ~id ~hosts:nhosts ();
          n_mem = Some mem;
          n_group = du_group;
          n_recoveries = 0;
          n_last_epoch = 0;
        })
  in
  let cl =
    {
      c_net = net;
      c_style = style;
      c_plan = faults;
      c_nodes = Array.init nhosts mk_node;
      c_storm = false;
      c_partition_left = 0;
      c_crashes = 0;
      c_torn = 0;
      c_partitions = 0;
      c_recoveries = 0;
      c_recovery_s = 0.0;
      c_replayed = 0;
      c_commits = 0;
    }
  in
  (* Shard the keyspace evenly by delegation from host 0. *)
  let per = keys / nhosts in
  for h = 1 to nhosts - 1 do
    let lo = h * per in
    let hi = if h = nhosts - 1 then Delegation_map.max_key else (h + 1) * per in
    Host.delegate cl.c_nodes.(0).n_host net ~lo ~hi ~dest:h
  done;
  drain cl;
  cl

let arm_storm cl ~crash_pct ~partition_pct ~torn_pct =
  Vbase.Faultplan.set_prob cl.c_plan crash_site ~pct:crash_pct;
  Vbase.Faultplan.set_prob cl.c_plan partition_site ~pct:partition_pct;
  Vbase.Faultplan.set_prob cl.c_plan "pmem.torn" ~pct:torn_pct;
  cl.c_storm <- crash_pct > 0 || partition_pct > 0

(* Key distributions.  Zipf ranks are scrambled by a fixed odd multiplier
   so the hot keys scatter across the key-order shards instead of all
   landing on host 0 (the multiplier is coprime to power-of-ten and
   power-of-two key counts, making the scramble a bijection there). *)
let key_picker rng ~keys dist =
  match dist with
  | `Uniform -> fun () -> Vbase.Rng.int rng keys
  | `Zipf s ->
    let z = Vbase.Rng.zipf ~s ~n:keys in
    fun () -> Vbase.Rng.zipf_draw rng z * 2654435761 mod keys

let total_commits cl =
  Array.fold_left
    (fun acc node ->
      match Host.durable node.n_host with Some d -> acc + Durable.syncs d | None -> acc)
    cl.c_commits cl.c_nodes

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * n / 100))

let run ?(hosts = 3) ?(clients = 10) ?(keys = 10_000) ?(payload = 128) ?(ops = 20_000)
    ?(get_ratio = 0.5) ?(seed = 42) ?(drop_pct = 0) ?(net_dup_pct = 0) ?(reorder_pct = 0)
    ?(delay_pct = 0) ?(fault_seed = 1) ?durability ?(dist = `Uniform) ?(crash_pct = 0)
    ?(partition_pct = 0) ?(torn_pct = 0) ~style () =
  let plan = make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct in
  let cl = setup ?durability ~style ~hosts ~clients ~keys ~faults:plan () in
  arm_storm cl ~crash_pct ~partition_pct ~torn_pct;
  let rng = Vbase.Rng.create ~seed in
  let pick = key_picker rng ~keys dist in
  let payload_string = String.make payload 'x' in
  let seqs = Array.make clients 0 in
  let retransmits = ref 0 in
  let lats = Array.make (max ops 1) 0.0 in
  let t0 = Unix.gettimeofday () in
  let done_ops = ref 0 in
  while !done_ops < ops do
    (* Each client issues one request, round-robin, closed loop. *)
    for c = 0 to clients - 1 do
      if !done_ops < ops then begin
        let client = hosts + c in
        seqs.(c) <- seqs.(c) + 1;
        let key = pick () in
        let msg =
          if Vbase.Rng.float rng < get_ratio then
            Message.Get { client; seq = seqs.(c); key }
          else Message.Set { client; seq = seqs.(c); key; value = payload_string }
        in
        (* Clients guess key-order sharding; wrong guesses exercise
           forwarding. *)
        let guess = min (hosts - 1) (key * hosts / keys) in
        let t_op = Unix.gettimeofday () in
        ignore
          (request_reply ~retransmit_counter:retransmits cl ~client ~dst:guess ~seq:seqs.(c) msg);
        lats.(!done_ops) <- Unix.gettimeofday () -. t_op;
        incr done_ops
      end
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  end_storm cl;
  Array.sort compare lats;
  {
    ops_done = !done_ops;
    elapsed_s = elapsed;
    kops_per_s = float_of_int !done_ops /. elapsed /. 1000.0;
    net_bytes = Network.bytes_sent cl.c_net;
    retransmissions = !retransmits;
    net_stats = Network.stats cl.c_net;
    lat_p50_ms = percentile lats 50 *. 1000.0;
    lat_p99_ms = percentile lats 99 *. 1000.0;
    crashes = cl.c_crashes + cl.c_torn;
    recoveries = cl.c_recoveries;
    recovery_s = cl.c_recovery_s;
    replayed = cl.c_replayed;
    commits = total_commits cl;
  }

let crosscheck_report ?(ops = 2000) ?(seed = 7) ?(dup_pct = 0) ?(drop_pct = 0)
    ?(net_dup_pct = 0) ?(reorder_pct = 0) ?(delay_pct = 0) ?(redelegate = true)
    ?(fault_seed = 1) ?faults ?durability ?(dist = `Uniform) ?(crash_pct = 0)
    ?(partition_pct = 0) ?(torn_pct = 0) ?(readback = true) () =
  let hosts = 3 and clients = 2 and keys = 500 in
  let plan =
    match faults with
    | Some p -> p
    | None -> make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct
  in
  let cl = setup ?durability ~style:`Inplace ~hosts ~clients ~keys ~faults:plan () in
  arm_storm cl ~crash_pct ~partition_pct ~torn_pct;
  let reference : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let rng = Vbase.Rng.create ~seed in
  let pick = key_picker rng ~keys dist in
  let seqs = Array.make clients 0 in
  let retransmits = ref 0 in
  let error = ref None in
  let done_ops = ref 0 in
  let readback_count = ref 0 in
  (try
     for _ = 1 to ops do
       if !error = None then begin
         let c = Vbase.Rng.int rng clients in
         let client = hosts + c in
         seqs.(c) <- seqs.(c) + 1;
         let key = pick () in
         let is_get = Vbase.Rng.bool rng in
         let msg =
           if is_get then Message.Get { client; seq = seqs.(c); key }
           else begin
             let value = Printf.sprintf "v%d-%d" key seqs.(c) in
             Hashtbl.replace reference key value;
             Message.Set { client; seq = seqs.(c); key; value }
           end
         in
         (* A flaky client channel: resend the same request (same seq) to
            a possibly different host.  The at-most-once reply cache must
            absorb it — no re-execution; at most a duplicate reply, which
            the client-side filter discards. *)
         if dup_pct > 0 && Vbase.Rng.int rng 100 < dup_pct then
           Network.send cl.c_net ~src:client ~dst:(Vbase.Rng.int rng hosts)
             (Message.to_bytes msg);
         (* Occasionally re-delegate a range away from its current owner —
            concurrently with the in-flight (possibly duplicated) request.
            The migrating reply cache plus sequenced inter-host channels
            keep execution exactly-once across the move; if no host
            currently claims the range start (its grant is still in
            flight), skip this round. *)
         let redelegate_roll = Vbase.Rng.int rng 100 in
         let lo = Vbase.Rng.int rng keys in
         let span = 1 + Vbase.Rng.int rng 50 in
         let dest = Vbase.Rng.int rng hosts in
         if redelegate && redelegate_roll = 0 then begin
           let owner = ref None in
           Array.iteri
             (fun i node -> if !owner = None && Host.owns node.n_host lo then owner := Some i)
             cl.c_nodes;
           match !owner with
           | Some i -> Host.delegate cl.c_nodes.(i).n_host cl.c_net ~lo ~hi:(lo + span) ~dest
           | None -> ()
         end;
         let rk, value =
           request_reply ~retransmit_counter:retransmits cl ~client
             ~dst:(Vbase.Rng.int rng hosts) ~seq:seqs.(c) msg
         in
         incr done_ops;
         if is_get then begin
           let expected = Hashtbl.find_opt reference key in
           if rk <> key then error := Some "reply for wrong key"
           else if value <> expected then
             error :=
               Some
                 (Printf.sprintf "get %d: got %s, expected %s" key
                    (Option.value ~default:"<none>" value)
                    (Option.value ~default:"<none>" expected))
         end
       end
     done;
     (* Storm over: heal, settle, then re-read every key the reference
        map knows about.  The reference holds exactly the acknowledged
        writes (the loop is closed: a Set either got its reply or raised),
        so a divergence here is an acknowledged write lost to a crash —
        the invariant this whole harness exists to pin. *)
     end_storm cl;
     if readback && !error = None then begin
       let bindings = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) reference []) in
       List.iter
         (fun (key, expected) ->
           if !error = None then begin
             seqs.(0) <- seqs.(0) + 1;
             let client = hosts in
             let guess = min (hosts - 1) (key * hosts / keys) in
             let rk, value =
               request_reply ~retransmit_counter:retransmits cl ~client ~dst:guess ~seq:seqs.(0)
                 (Message.Get { client; seq = seqs.(0); key })
             in
             incr readback_count;
             if rk <> key || value <> Some expected then
               error :=
                 Some
                   (Printf.sprintf "readback %d: got %s, expected %s (acknowledged write lost)"
                      key
                      (Option.value ~default:"<none>" value)
                      expected)
           end)
         bindings
     end
   with e -> error := Some (Printexc.to_string e));
  let report =
    {
      sr_ops = !done_ops;
      sr_crashes = cl.c_crashes;
      sr_torn = cl.c_torn;
      sr_partitions = cl.c_partitions;
      sr_recoveries = cl.c_recoveries;
      sr_recovery_s = cl.c_recovery_s;
      sr_replayed = cl.c_replayed;
      sr_readback = !readback_count;
      sr_retransmissions = !retransmits;
    }
  in
  (report, match !error with None -> Ok () | Some e -> Error e)

let crosscheck ?ops ?seed ?dup_pct ?drop_pct ?net_dup_pct ?reorder_pct ?delay_pct ?redelegate
    ?fault_seed ?faults ?durability ?dist ?crash_pct ?partition_pct ?torn_pct ?readback () =
  snd
    (crosscheck_report ?ops ?seed ?dup_pct ?drop_pct ?net_dup_pct ?reorder_pct ?delay_pct
       ?redelegate ?fault_seed ?faults ?durability ?dist ?crash_pct ?partition_pct ?torn_pct
       ?readback ())

(* --- recovery probe ---------------------------------------------------- *)

(* Isolated recovery-time measurement: fill a durable store with a known
   record count under group commit, crash, and time [Durable.recover]
   (the EXPERIMENTS.md table and the bench [kv] section report it). *)
let recovery_probe ?(records = 20_000) ?(payload = 64) ?(group = 64) () =
  (* The device holds two log regions; size the op log for the record
     count plus framing overhead. *)
  let mem = Plog.Pmem.create ~size:((2 * records * (payload + 96)) + 4096) () in
  Durable.format mem;
  let d =
    match Durable.attach ~group mem with
    | Ok d -> d
    | Error e -> failwith ("recovery_probe: " ^ e)
  in
  let v = String.make payload 'r' in
  let commit () =
    match Durable.sync d with
    | Durable.Synced _ -> ()
    | Durable.Power_failed | Durable.Failed _ -> failwith "recovery_probe: sync failed"
  in
  for i = 1 to records do
    Durable.log_op d (Durable.Set_op { client = 0; seq = i; key = i land 4095; value = v });
    if Durable.pending d >= group then commit ()
  done;
  commit ();
  Plog.Pmem.crash mem;
  let t0 = Unix.gettimeofday () in
  match Durable.recover ~group mem with
  | Error e -> failwith ("recovery_probe: " ^ e)
  | Ok (_, ops, routes) -> (Unix.gettimeofday () -. t0, List.length ops + List.length routes)

(* --- bench schema ------------------------------------------------------ *)

let kv_bench_schema = "verus-kv-bench/1"

(* The bench harness emits BENCH_kv.json through these builders and the
   test suite validates the result — one implementation for producer and
   checker, same pattern as the profile trace. *)
let kv_bench_row ~name ~acked_write_loss (r : result) : Vbase.Json.t =
  Vbase.Json.Obj
    [
      ("name", Vbase.Json.String name);
      ("ops", Vbase.Json.Int r.ops_done);
      ("kops_per_s", Vbase.Json.Float r.kops_per_s);
      ("lat_p50_ms", Vbase.Json.Float r.lat_p50_ms);
      ("lat_p99_ms", Vbase.Json.Float r.lat_p99_ms);
      ("crashes", Vbase.Json.Int r.crashes);
      ("recoveries", Vbase.Json.Int r.recoveries);
      ("recovery_s", Vbase.Json.Float r.recovery_s);
      ("replayed", Vbase.Json.Int r.replayed);
      ("commits", Vbase.Json.Int r.commits);
      ("retransmissions", Vbase.Json.Int r.retransmissions);
      ("acked_write_loss", Vbase.Json.Int acked_write_loss);
    ]

let kv_bench_doc rows : Vbase.Json.t =
  Vbase.Json.Obj
    [ ("schema", Vbase.Json.String kv_bench_schema); ("rows", Vbase.Json.List rows) ]

let validate_kv_bench (j : Vbase.Json.t) =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match Vbase.Json.member "schema" j with
  | Some (Vbase.Json.String s) when s = kv_bench_schema -> (
    match Vbase.Json.member "rows" j with
    | Some (Vbase.Json.List rows) ->
      let check_row i r =
        let num k =
          match Option.bind (Vbase.Json.member k r) Vbase.Json.to_float with
          | Some f when f >= 0.0 -> Ok f
          | Some _ -> fail "row %d: %S is negative" i k
          | None -> fail "row %d: missing numeric %S" i k
        in
        match Vbase.Json.member "name" r with
        | Some (Vbase.Json.String _) ->
          List.fold_left
            (fun acc k -> match acc with Error _ -> acc | Ok () -> Result.map ignore (num k))
            (Ok ())
            [
              "kops_per_s"; "lat_p50_ms"; "lat_p99_ms"; "crashes"; "recoveries"; "recovery_s";
              "acked_write_loss";
            ]
        | _ -> fail "row %d: missing \"name\"" i
      in
      let rec go i = function
        | [] -> Ok ()
        | r :: rest -> ( match check_row i r with Ok () -> go (i + 1) rest | e -> e)
      in
      if rows = [] then fail "empty \"rows\"" else go 0 rows
    | _ -> fail "missing \"rows\" array")
  | Some _ -> fail "wrong schema (want %s)" kv_bench_schema
  | None -> fail "missing \"schema\""
