type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
}

(* Deliver every pending host-bound message (hosts may generate more
   traffic while handling, e.g. forwards). *)
let drain_hosts hosts net =
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun i h ->
        match Network.recv net ~me:i with
        | Some raw ->
          Host.handle h net raw;
          progress := true
        | None -> ())
      hosts
  done

let setup ~style ~hosts:nhosts ~clients:nclients ~keys =
  let net = Network.create ~endpoints:(nhosts + nclients) () in
  let hosts = Array.init nhosts (fun id -> Host.create ~style ~id ~hosts:nhosts) in
  (* Shard the keyspace evenly by delegation from host 0. *)
  let per = keys / nhosts in
  for h = 1 to nhosts - 1 do
    let lo = h * per in
    let hi = if h = nhosts - 1 then Delegation_map.max_key else (h + 1) * per in
    Host.delegate hosts.(0) net ~lo ~hi ~dest:h
  done;
  drain_hosts hosts net;
  (net, hosts)

let run ?(hosts = 3) ?(clients = 10) ?(keys = 10_000) ?(payload = 128) ?(ops = 20_000)
    ?(get_ratio = 0.5) ?(seed = 42) ~style () =
  let net, host_arr = setup ~style ~hosts ~clients ~keys in
  let rng = Vbase.Rng.create ~seed in
  let payload_string = String.make payload 'x' in
  let seqs = Array.make clients 0 in
  let t0 = Unix.gettimeofday () in
  let done_ops = ref 0 in
  while !done_ops < ops do
    (* Each client issues one request, round-robin, closed loop. *)
    for c = 0 to clients - 1 do
      if !done_ops < ops then begin
        let client = hosts + c in
        seqs.(c) <- seqs.(c) + 1;
        let key = Vbase.Rng.int rng keys in
        let msg =
          if Vbase.Rng.float rng < get_ratio then
            Message.Get { client; seq = seqs.(c); key }
          else Message.Set { client; seq = seqs.(c); key; value = payload_string }
        in
        (* Clients guess key-order sharding; wrong guesses exercise
           forwarding. *)
        let guess = min (hosts - 1) (key * hosts / keys) in
        Network.send net ~dst:guess (Message.to_bytes msg);
        drain_hosts host_arr net;
        (* Consume the reply. *)
        (match Network.recv net ~me:client with
        | Some _ -> ()
        | None -> failwith "client got no reply");
        incr done_ops
      end
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    ops_done = !done_ops;
    elapsed_s = elapsed;
    kops_per_s = float_of_int !done_ops /. elapsed /. 1000.0;
    net_bytes = Network.bytes_sent net;
  }

let crosscheck ?(ops = 2000) ?(seed = 7) ?(dup_pct = 0) () =
  let hosts = 3 and clients = 2 and keys = 500 in
  let net, host_arr = setup ~style:`Inplace ~hosts ~clients ~keys in
  let reference : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let rng = Vbase.Rng.create ~seed in
  let seqs = Array.make clients 0 in
  let error = ref None in
  (try
     for _ = 1 to ops do
       if !error = None then begin
         let c = Vbase.Rng.int rng clients in
         let client = hosts + c in
         seqs.(c) <- seqs.(c) + 1;
         let key = Vbase.Rng.int rng keys in
         let is_get = Vbase.Rng.bool rng in
         let msg =
           if is_get then Message.Get { client; seq = seqs.(c); key }
           else begin
             let value = Printf.sprintf "v%d-%d" key seqs.(c) in
             Hashtbl.replace reference key value;
             Message.Set { client; seq = seqs.(c); key; value }
           end
         in
         Network.send net ~dst:(Vbase.Rng.int rng hosts) (Message.to_bytes msg);
         (* A flaky client channel: resend the same request (same seq).
            The at-most-once table must absorb it — no re-execution, no
            extra reply. *)
         if dup_pct > 0 && Vbase.Rng.int rng 100 < dup_pct then
           Network.send net ~dst:(Vbase.Rng.int rng hosts) (Message.to_bytes msg);
         (* Occasionally re-delegate a range from its current owner.
            Disabled while duplicating: the at-most-once table is per-host
            and does not migrate with a shard (IronFleet gets this from
            sequenced inter-host channels), so a duplicate crossing a
            re-delegation could legitimately re-execute. *)
         if dup_pct = 0 && Vbase.Rng.int rng 100 = 0 then begin
           let lo = Vbase.Rng.int rng keys in
           let hi = lo + 1 + Vbase.Rng.int rng 50 in
           let rec find i = if Host.owns host_arr.(i) lo then i else find (i + 1) in
           Host.delegate host_arr.(find 0) net ~lo ~hi ~dest:(Vbase.Rng.int rng hosts)
         end;
         drain_hosts host_arr net;
         match Network.recv net ~me:client with
         | Some raw -> (
           match Message.of_bytes raw with
           | Some (Message.Reply { key = rk; value; _ }) ->
             if is_get then begin
               let expected = Hashtbl.find_opt reference key in
               if rk <> key then error := Some "reply for wrong key"
               else if value <> expected then
                 error :=
                   Some
                     (Printf.sprintf "get %d: got %s, expected %s" key
                        (Option.value ~default:"<none>" value)
                        (Option.value ~default:"<none>" expected))
             end
           | _ -> error := Some "unexpected reply message")
         | None -> error := Some "no reply"
       end
     done
   with e -> error := Some (Printexc.to_string e));
  match !error with None -> Ok () | Some e -> Error e
