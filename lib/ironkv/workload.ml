type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
  retransmissions : int;
  net_stats : (string * int) list;
}

exception Client_timeout of string

(* Deliver every pending host-bound message (hosts may generate more
   traffic while handling, e.g. forwards).  Messages under an injected
   delay stay queued; each sweep ages them by one poll, so repeated
   drains (the client retry loop) eventually deliver everything. *)
let drain_hosts hosts net =
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun i h ->
        match Network.recv net ~me:i with
        | Some raw ->
          Host.handle h net raw;
          progress := true
        | None -> ())
      hosts
  done

(* Pull the reply for [seq] out of [me]'s mailbox, discarding stale
   duplicate replies (retransmissions make the host re-send cached
   replies; the client has already consumed one copy and moved on). *)
let rec recv_reply net ~me ~seq =
  match Network.recv net ~me with
  | None -> None
  | Some raw -> (
    match Message.of_bytes raw with
    | Some (Message.Reply { seq = s; key; value; _ }) when s = seq -> Some (key, value)
    | _ -> recv_reply net ~me ~seq (* stale / unexpected: drop, keep looking *))

(* One closed-loop client request with retransmission: send, poll with a
   timeout (measured in drain rounds, the simulator's clock), and on
   expiry retransmit the same request — same sequence number — doubling
   the timeout each attempt (exponential backoff, capped).  The host's
   at-most-once reply cache absorbs the duplicates and re-sends the
   cached reply, so retry under loss terminates without re-execution. *)
let request_reply ?(retransmit_counter = ref 0) net hosts ~client ~dst ~seq msg =
  let raw = Message.to_bytes msg in
  Network.send net ~src:client ~dst raw;
  let max_attempts = 14 in
  let rec poll k =
    drain_hosts hosts net;
    match recv_reply net ~me:client ~seq with
    | Some r -> Some r
    | None -> if k > 1 then poll (k - 1) else None
  in
  let rec attempt n ~timeout =
    match poll timeout with
    | Some r -> r
    | None ->
      if n >= max_attempts then
        raise
          (Client_timeout
             (Printf.sprintf "client %d: no reply for seq %d after %d retransmissions" client seq
                n))
      else begin
        incr retransmit_counter;
        Network.send net ~src:client ~dst raw;
        attempt (n + 1) ~timeout:(min 64 (timeout * 2))
      end
  in
  attempt 0 ~timeout:2

let make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct =
  let plan = Vbase.Faultplan.create ~seed:fault_seed () in
  Vbase.Faultplan.set_prob plan "net.drop" ~pct:drop_pct;
  Vbase.Faultplan.set_prob plan "net.dup" ~pct:net_dup_pct;
  Vbase.Faultplan.set_prob plan "net.reorder" ~pct:reorder_pct;
  Vbase.Faultplan.set_prob plan "net.delay" ~pct:delay_pct;
  plan

let setup ~style ~hosts:nhosts ~clients:nclients ~keys ~faults =
  let net = Network.create ~endpoints:(nhosts + nclients) ~faults ~sequenced:true () in
  let hosts = Array.init nhosts (fun id -> Host.create ~style ~id ~hosts:nhosts) in
  (* Shard the keyspace evenly by delegation from host 0. *)
  let per = keys / nhosts in
  for h = 1 to nhosts - 1 do
    let lo = h * per in
    let hi = if h = nhosts - 1 then Delegation_map.max_key else (h + 1) * per in
    Host.delegate hosts.(0) net ~lo ~hi ~dest:h
  done;
  drain_hosts hosts net;
  (net, hosts)

let run ?(hosts = 3) ?(clients = 10) ?(keys = 10_000) ?(payload = 128) ?(ops = 20_000)
    ?(get_ratio = 0.5) ?(seed = 42) ?(drop_pct = 0) ?(net_dup_pct = 0) ?(reorder_pct = 0)
    ?(delay_pct = 0) ?(fault_seed = 1) ~style () =
  let plan = make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct in
  let net, host_arr = setup ~style ~hosts ~clients ~keys ~faults:plan in
  let rng = Vbase.Rng.create ~seed in
  let payload_string = String.make payload 'x' in
  let seqs = Array.make clients 0 in
  let retransmits = ref 0 in
  let t0 = Unix.gettimeofday () in
  let done_ops = ref 0 in
  while !done_ops < ops do
    (* Each client issues one request, round-robin, closed loop. *)
    for c = 0 to clients - 1 do
      if !done_ops < ops then begin
        let client = hosts + c in
        seqs.(c) <- seqs.(c) + 1;
        let key = Vbase.Rng.int rng keys in
        let msg =
          if Vbase.Rng.float rng < get_ratio then
            Message.Get { client; seq = seqs.(c); key }
          else Message.Set { client; seq = seqs.(c); key; value = payload_string }
        in
        (* Clients guess key-order sharding; wrong guesses exercise
           forwarding. *)
        let guess = min (hosts - 1) (key * hosts / keys) in
        ignore
          (request_reply ~retransmit_counter:retransmits net host_arr ~client ~dst:guess
             ~seq:seqs.(c) msg);
        incr done_ops
      end
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    ops_done = !done_ops;
    elapsed_s = elapsed;
    kops_per_s = float_of_int !done_ops /. elapsed /. 1000.0;
    net_bytes = Network.bytes_sent net;
    retransmissions = !retransmits;
    net_stats = Network.stats net;
  }

let crosscheck ?(ops = 2000) ?(seed = 7) ?(dup_pct = 0) ?(drop_pct = 0) ?(net_dup_pct = 0)
    ?(reorder_pct = 0) ?(delay_pct = 0) ?(redelegate = true) ?(fault_seed = 1) ?faults () =
  let hosts = 3 and clients = 2 and keys = 500 in
  let plan =
    match faults with
    | Some p -> p
    | None -> make_plan ~fault_seed ~drop_pct ~net_dup_pct ~reorder_pct ~delay_pct
  in
  let net, host_arr = setup ~style:`Inplace ~hosts ~clients ~keys ~faults:plan in
  let reference : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let rng = Vbase.Rng.create ~seed in
  let seqs = Array.make clients 0 in
  let error = ref None in
  (try
     for _ = 1 to ops do
       if !error = None then begin
         let c = Vbase.Rng.int rng clients in
         let client = hosts + c in
         seqs.(c) <- seqs.(c) + 1;
         let key = Vbase.Rng.int rng keys in
         let is_get = Vbase.Rng.bool rng in
         let msg =
           if is_get then Message.Get { client; seq = seqs.(c); key }
           else begin
             let value = Printf.sprintf "v%d-%d" key seqs.(c) in
             Hashtbl.replace reference key value;
             Message.Set { client; seq = seqs.(c); key; value }
           end
         in
         (* A flaky client channel: resend the same request (same seq) to
            a possibly different host.  The at-most-once reply cache must
            absorb it — no re-execution; at most a duplicate reply, which
            the client-side filter discards. *)
         if dup_pct > 0 && Vbase.Rng.int rng 100 < dup_pct then
           Network.send net ~src:client ~dst:(Vbase.Rng.int rng hosts)
             (Message.to_bytes msg);
         (* Occasionally re-delegate a range away from its current owner —
            concurrently with the in-flight (possibly duplicated) request.
            The migrating reply cache plus sequenced inter-host channels
            keep execution exactly-once across the move; if no host
            currently claims the range start (its grant is still in
            flight), skip this round. *)
         let redelegate_roll = Vbase.Rng.int rng 100 in
         let lo = Vbase.Rng.int rng keys in
         let span = 1 + Vbase.Rng.int rng 50 in
         let dest = Vbase.Rng.int rng hosts in
         if redelegate && redelegate_roll = 0 then begin
           let owner = ref None in
           Array.iteri
             (fun i h -> if !owner = None && Host.owns h lo then owner := Some i)
             host_arr;
           match !owner with
           | Some i -> Host.delegate host_arr.(i) net ~lo ~hi:(lo + span) ~dest
           | None -> ()
         end;
         let rk, value =
           request_reply net host_arr ~client ~dst:(Vbase.Rng.int rng hosts) ~seq:seqs.(c) msg
         in
         if is_get then begin
           let expected = Hashtbl.find_opt reference key in
           if rk <> key then error := Some "reply for wrong key"
           else if value <> expected then
             error :=
               Some
                 (Printf.sprintf "get %d: got %s, expected %s" key
                    (Option.value ~default:"<none>" value)
                    (Option.value ~default:"<none>" expected))
         end
       end
     done
   with e -> error := Some (Printexc.to_string e));
  match !error with None -> Ok () | Some e -> Error e
