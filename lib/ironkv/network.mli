(** In-memory network for the IronKV cluster: one byte-level mailbox per
    endpoint.  Deterministic FIFO by default; an attached
    {!Vbase.Faultplan} arms the adversarial behaviours the IronFleet
    protocol proofs assume — message drop, duplication, reordering and
    delay — plus an explicit partition knob, all replayable from the
    plan seed.

    Fault sites consulted per {!send} (probabilities / explicit steps
    are configured on the plan by the caller):
    - ["net.drop"]    — the message is lost (never for sequenced sends);
    - ["net.dup"]     — the message is delivered twice;
    - ["net.reorder"] — the message overtakes the current queue head;
    - ["net.delay"]   — delivery is held for [1 + draw "net.delay" 4]
                        receive polls on the destination mailbox.

    {b Sequenced channels} ({!send_seq}): per-(src, dst) monotone
    sequence numbers with receiver-side dedup and in-order release —
    the IronFleet inter-host channel abstraction.  A sequenced send is
    exempt from ["net.drop"] (the abstraction models a retransmitting
    transport, TCP-style: eventual delivery is guaranteed), while
    duplication, reordering and delay still apply and are masked by the
    receiver's dedup/reassembly state.  On an unsequenced network
    ([sequenced:false], the default), {!send_seq} degrades to {!send}.

    {b Partitions}: {!set_partition} isolates a set of endpoints;
    messages crossing the cut are parked, not dropped, and delivered
    once {!heal_partition} is called (a partition is indistinguishable
    from a long delay, so sequenced-channel guarantees survive it). *)

type t

val create :
  ?reorder:bool ->
  ?duplicate_pct:int ->
  ?seed:int ->
  ?faults:Vbase.Faultplan.t ->
  ?sequenced:bool ->
  endpoints:int ->
  unit ->
  t
(** [endpoints] mailboxes.  [reorder]/[duplicate_pct] are the legacy
    seeded knobs (kept for the protocol robustness tests); [faults]
    attaches a fault plan consulted as documented above; [sequenced]
    enables the sequenced-channel layer for {!send_seq} traffic. *)

val faults : t -> Vbase.Faultplan.t option

val send : t -> ?src:int -> dst:int -> bytes -> unit
(** Enqueue a marshalled message for endpoint [dst].  [src] (the sending
    endpoint) is only required for partition accounting; an unknown
    sender is treated as outside any partitioned set. *)

val send_seq : t -> src:int -> dst:int -> bytes -> unit
(** Send over the (src, dst) sequenced channel: tagged with the next
    per-pair sequence number; the receiver deduplicates and releases
    strictly in order.  Never dropped (see above). *)

val recv : t -> me:int -> bytes option
(** Dequeue the next deliverable message for [me], if any.  Each call
    also ages [me]'s delayed messages by one poll. *)

val set_partition : t -> int list -> unit
(** Isolate the given endpoints: messages between the set and its
    complement are parked until {!heal_partition}. *)

val heal_partition : t -> unit
(** Lift the partition and enqueue every parked message. *)

val pending : t -> int
(** Total undelivered messages (queued, delayed, parked, or held for
    in-order release). *)

val bytes_sent : t -> int
(** Cumulative payload bytes through the network (the throughput benches
    report it). *)

val stats : t -> (string * int) list
(** Fault-injection counters: sent / dropped / duplicated / reordered /
    delayed / parked / dedup-suppressed messages (for the bench report). *)
