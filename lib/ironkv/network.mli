(** In-memory network for the IronKV cluster: one byte-level mailbox per
    endpoint.  Deterministic FIFO by default; optional reordering and
    duplication (seeded) for the protocol robustness tests. *)

type t

val create : ?reorder:bool -> ?duplicate_pct:int -> ?seed:int -> endpoints:int -> unit -> t
(** [endpoints] mailboxes; [reorder] delivers in random order and
    [duplicate_pct] redelivers that percentage of messages (both seeded). *)

val send : t -> dst:int -> bytes -> unit
(** Enqueue a marshalled message for endpoint [dst]. *)

val recv : t -> me:int -> bytes option
(** Dequeue the next message for [me], if any. *)

val pending : t -> int
(** Total undelivered messages. *)

val bytes_sent : t -> int
(** Cumulative bytes through the network (the throughput benches report it). *)
