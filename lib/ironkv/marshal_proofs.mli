(** Verified marshalling lemmas (§4.2.1): the facts the [Marshallable]
    derive-macros discharge in the Verus port, here proved by the verifier
    and its §3.3 modes.

    Covers the unambiguity core of the wire format: byte decomposition and
    recomposition of fixed-width integers (round-trip), byte-range bounds,
    and tag-dispatch injectivity. *)

type obligation = { name : string; mode : string; proved : bool; detail : string }

val run : unit -> obligation list
(** Discharge every marshalling obligation; [mode] says which §3.3 proof
    mode (or "default") handled it. *)

val all_proved : obligation list -> bool
