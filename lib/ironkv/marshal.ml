type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : bytes -> int -> ('a * int) option;
}

let write m = m.write
let read m = m.read

let to_bytes m v =
  let b = Buffer.create 64 in
  m.write b v;
  Buffer.to_bytes b

let of_bytes m buf =
  match m.read buf 0 with
  | Some (v, off) when off = Bytes.length buf -> Some v
  | _ -> None

(* --- primitives ----------------------------------------------------- *)

let fixed_int ~bytes ~max_check =
  {
    write =
      (fun b v ->
        if v < 0 || (max_check > 0 && v > max_check) then
          invalid_arg (Printf.sprintf "marshal: %d out of range" v);
        for i = bytes - 1 downto 0 do
          Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
        done);
    read =
      (fun buf off ->
        if off + bytes > Bytes.length buf then None
        else begin
          let v = ref 0 in
          for i = 0 to bytes - 1 do
            v := (!v lsl 8) lor Char.code (Bytes.get buf (off + i))
          done;
          Some (!v, off + bytes)
        end);
  }

let u8 = fixed_int ~bytes:1 ~max_check:0xFF
let u16 = fixed_int ~bytes:2 ~max_check:0xFFFF
let u32 = fixed_int ~bytes:4 ~max_check:0xFFFFFFFF
let u64 = fixed_int ~bytes:8 ~max_check:0 (* full native int range *)

let boolean =
  {
    write = (fun b v -> Buffer.add_char b (if v then '\001' else '\000'));
    read =
      (fun buf off ->
        if off >= Bytes.length buf then None
        else
          match Bytes.get buf off with
          | '\000' -> Some (false, off + 1)
          | '\001' -> Some (true, off + 1)
          | _ -> None);
  }

let byte_string =
  {
    write =
      (fun b s ->
        u32.write b (String.length s);
        Buffer.add_string b s);
    read =
      (fun buf off ->
        match u32.read buf off with
        | Some (n, off) when off + n <= Bytes.length buf ->
          Some (Bytes.sub_string buf off n, off + n)
        | _ -> None);
  }

(* --- combinators ---------------------------------------------------- *)

let pair ma mb =
  {
    write =
      (fun b (x, y) ->
        ma.write b x;
        mb.write b y);
    read =
      (fun buf off ->
        match ma.read buf off with
        | Some (x, off) -> (
          match mb.read buf off with Some (y, off) -> Some ((x, y), off) | None -> None)
        | None -> None);
  }

let triple ma mb mc =
  let m = pair ma (pair mb mc) in
  {
    write = (fun b (x, y, z) -> m.write b (x, (y, z)));
    read =
      (fun buf off ->
        match m.read buf off with
        | Some ((x, (y, z)), off) -> Some ((x, y, z), off)
        | None -> None);
  }

let vec ma =
  {
    write =
      (fun b xs ->
        u32.write b (List.length xs);
        List.iter (ma.write b) xs);
    read =
      (fun buf off ->
        match u32.read buf off with
        | Some (n, off) ->
          let rec go acc off k =
            if k = 0 then Some (List.rev acc, off)
            else
              match ma.read buf off with
              | Some (x, off) -> go (x :: acc) off (k - 1)
              | None -> None
          in
          go [] off n
        | None -> None);
  }

let option ma =
  {
    write =
      (fun b v ->
        match v with
        | None -> Buffer.add_char b '\000'
        | Some x ->
          Buffer.add_char b '\001';
          ma.write b x);
    read =
      (fun buf off ->
        if off >= Bytes.length buf then None
        else
          match Bytes.get buf off with
          | '\000' -> Some (None, off + 1)
          | '\001' -> (
            match ma.read buf (off + 1) with
            | Some (x, off) -> Some (Some x, off)
            | None -> None)
          | _ -> None);
  }

let tagged cases ~tag_of =
  List.iter
    (fun (tag, _) ->
      if tag < 0 || tag > 0xFF then invalid_arg "marshal: tag out of range";
      if List.length (List.filter (fun (t, _) -> t = tag) cases) > 1 then
        invalid_arg "marshal: duplicate tag")
    cases;
  {
    write =
      (fun b v ->
        let tag = tag_of v in
        match List.assoc_opt tag cases with
        | Some m ->
          u8.write b tag;
          m.write b v
        | None -> invalid_arg (Printf.sprintf "marshal: no case for tag %d" tag));
    read =
      (fun buf off ->
        match u8.read buf off with
        | Some (tag, off) -> (
          match List.assoc_opt tag cases with Some m -> m.read buf off | None -> None)
        | None -> None);
  }

let map_iso fwd bwd ma =
  {
    write = (fun b v -> ma.write b (bwd v));
    read =
      (fun buf off ->
        match ma.read buf off with Some (x, off) -> Some (fwd x, off) | None -> None);
  }
