(* Pivot-list delegation map.  pivots.(i) = (key_i, host_i) means keys in
   [key_i, key_{i+1}) (or up to max_key for the last pivot) are governed by
   host_i.  Invariants: strictly ascending keys, pivots.(0) has key 0,
   adjacent hosts differ (canonical form). *)

let max_key = max_int

type t = { mutable pivots : (int * int) array }

let create ~default_host = { pivots = [| (0, default_host) |] }

let pivot_count t = Array.length t.pivots
let to_alist t = Array.to_list t.pivots

(* Index of the last pivot with key <= k (binary search). *)
let floor_pivot t k =
  let lo = ref 0 and hi = ref (Array.length t.pivots - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if fst t.pivots.(mid) <= k then lo := mid else hi := mid - 1
  done;
  !lo

let get t k =
  if k < 0 then invalid_arg "Delegation_map.get: negative key";
  snd t.pivots.(floor_pivot t k)

let set_range t ~lo ~hi ~host =
  if lo < 0 then invalid_arg "Delegation_map.set_range: negative key";
  if lo < hi then begin
    (* Host governing [hi] before the update (needed to restore the tail
       of a split range). *)
    let host_at_hi = if hi > max_key then None else Some (get t hi) in
    let old = t.pivots in
    let keep_before = Array.to_list old |> List.filter (fun (k, _) -> k < lo) in
    let keep_after = Array.to_list old |> List.filter (fun (k, _) -> k >= hi) in
    let mid =
      (lo, host)
      ::
      (match host_at_hi with
      | Some h when not (List.exists (fun (k, _) -> k = hi) keep_after) -> [ (hi, h) ]
      | _ -> [])
    in
    let merged = keep_before @ mid @ keep_after in
    (* Canonicalize: drop pivots whose host equals their predecessor's. *)
    let rec canon acc = function
      | [] -> List.rev acc
      | (k, h) :: rest -> (
        match acc with
        | (_, ph) :: _ when ph = h -> canon acc rest
        | _ -> canon ((k, h) :: acc) rest)
    in
    t.pivots <- Array.of_list (canon [] merged)
  end

let check_invariant t =
  let n = Array.length t.pivots in
  if n = 0 then Error "empty pivot list"
  else if fst t.pivots.(0) <> 0 then Error "first pivot key is not 0"
  else begin
    let err = ref None in
    for i = 0 to n - 2 do
      let k1, h1 = t.pivots.(i) and k2, h2 = t.pivots.(i + 1) in
      if k1 >= k2 && !err = None then
        err := Some (Printf.sprintf "pivots out of order at %d (%d >= %d)" i k1 k2);
      if h1 = h2 && !err = None then
        err := Some (Printf.sprintf "adjacent pivots %d and %d share host %d" i (i + 1) h1)
    done;
    match !err with None -> Ok () | Some e -> Error e
  end
