(** An IronKV host (§4.2.1): owns the keys its delegation map assigns to
    it, serves Get/Set, forwards requests for keys it does not own, and
    handles range delegation.

    Duplicate requests are suppressed by a per-client at-most-once
    {e reply cache} [client -> (seq, key, reply)] — stronger than a bare
    tombstone table: a retransmission of the latest request re-sends the
    cached reply (idempotent resend, so client-side retry under message
    loss terminates), anything older is dropped.  The cache is shipped
    inside every [Delegate] message and merged (highest seq wins) by all
    receiving hosts, so at-most-once execution survives re-delegation —
    the hole IronFleet closes with sequenced inter-host channels.
    Host-to-host traffic (forwards, delegations) accordingly travels via
    {!Network.send_seq}.

    [`Inplace] is the Verus-port style (fine-grained [&mut] mutation);
    [`Copying] emulates the IronFleet style the paper calls out, where the
    painfulness of reasoning about fine-grained mutation led to replacing
    entire data structures — every request handler rebuilds the reply
    cache and delegation map.  Both are functionally identical; Figure 10
    compares their throughput. *)

type style = [ `Inplace | `Copying ]

type t

val create : style:style -> id:int -> hosts:int -> t
(** Host ids are [0..hosts-1]; keyspace is initially owned by host 0. *)

val handle : t -> Network.t -> bytes -> unit
(** Process one incoming message (parse, act, send replies/forwards). *)

val delegate : t -> Network.t -> lo:int -> hi:int -> dest:int -> unit
(** Initiate delegation of a key range this host owns.  Ships the range
    contents and the at-most-once reply cache to every peer over the
    sequenced channels. *)

val store_size : t -> int
val owns : t -> int -> bool

val dump : t -> (int * string) list
(** Contents of the local store (tests). *)

val cache_snapshot : t -> (int * (int * int * string option)) list
(** The at-most-once reply cache, [client -> (seq, key, reply)] (tests). *)
