(** An IronKV host (§4.2.1): owns the keys its delegation map assigns to
    it, serves Get/Set, forwards requests for keys it does not own, and
    handles range delegation.

    Duplicate requests are suppressed by a per-client at-most-once
    {e reply cache} [client -> (seq, key, reply)] — stronger than a bare
    tombstone table: a retransmission of the latest request re-sends the
    cached reply (idempotent resend, so client-side retry under message
    loss terminates), anything older is dropped.  The cache is shipped
    inside every [Delegate] message and merged (highest seq wins) by all
    receiving hosts, so at-most-once execution survives re-delegation —
    the hole IronFleet closes with sequenced inter-host channels.
    Host-to-host traffic (forwards, delegations) accordingly travels via
    {!Network.send_seq}.

    {b Durability} (PR 7): a host created with [?durable] logs every
    mutation (store writes, reply-cache entries, shard installs/drops,
    epoch bumps) into a {!Durable} record store and {e defers every
    outgoing send} — replies, forwards, delegation broadcasts — until the
    pending batch group-commits ({!sync}).  An acknowledgement therefore
    never outruns the record that justifies it: a crash can lose only
    unacknowledged work, and {!of_replay} rebuilds the host to the exact
    last committed group-commit boundary (at-most-once suppression and
    epoch monotonicity included — the storm tests pin both).

    [`Inplace] is the Verus-port style (fine-grained [&mut] mutation);
    [`Copying] emulates the IronFleet style the paper calls out, where the
    painfulness of reasoning about fine-grained mutation led to replacing
    entire data structures — every request handler rebuilds the reply
    cache and delegation map.  Both are functionally identical; Figure 10
    compares their throughput. *)

type style = [ `Inplace | `Copying ]

type t

val create : ?durable:Durable.t -> style:style -> id:int -> hosts:int -> unit -> t
(** Host ids are [0..hosts-1]; keyspace is initially owned by host 0.
    With [durable], mutations are logged and sends deferred (see above). *)

val handle : t -> Network.t -> bytes -> unit
(** Process one incoming message (parse, act, send replies/forwards).
    On a durable host, outgoing traffic is staged until {!sync}; the
    handler itself forces a group commit once the pending batch reaches
    the configured group size.  A {!is_dead} host ignores everything. *)

val sync : t -> Network.t -> [ `Ok of int | `Crashed ]
(** Group commit: flush the pending durable batch and, on success,
    release the deferred sends (returns how many).  [`Crashed] means the
    simulated power failed at the flush — the batch is lost, nothing was
    sent, and the host is {!is_dead} until the harness rebuilds it with
    {!of_replay}.  Volatile hosts always return [`Ok 0]. *)

val of_replay :
  style:style ->
  id:int ->
  hosts:int ->
  durable:Durable.t ->
  Durable.op list * Durable.route list ->
  t
(** Crash recovery: rebuild a host from the committed record prefix
    returned by {!Durable.recover} — data-plane records rebuild the
    store and reply cache, routing-plane records the delegation map and
    [max_epoch]. *)

val delegate : t -> Network.t -> lo:int -> hi:int -> dest:int -> unit
(** Initiate delegation of a key range this host owns.  Ships the range
    contents and the at-most-once reply cache to every peer over the
    sequenced channels (deferred behind the Drop_range/Grant_out records
    on a durable host).  Because channel delivery is not persistence —
    the destination can crash between receiving the Delegate and group-
    committing the Install, losing the shard — the grantor keeps the
    grant durably outstanding and retransmits it every few group commits
    until the destination's durable [Ack] arrives; the destination dedups
    retransmissions by (grantor, epoch) and re-acks. *)

val store_size : t -> int
val owns : t -> int -> bool

val max_epoch : t -> int
(** Highest delegation epoch seen (monotone; the storm harness checks it
    never regresses across crash/recovery cycles). *)

val is_dead : t -> bool
(** True once a commit flush hit a simulated power failure; the host
    processes nothing until recovered. *)

val durable : t -> Durable.t option

val outstanding_grants : t -> int
(** Grants this host issued whose destination has not yet durably
    acknowledged them (still being retransmitted). *)

val dump : t -> (int * string) list
(** Contents of the local store (tests). *)

val cache_snapshot : t -> (int * (int * int * string option)) list
(** The at-most-once reply cache, [client -> (seq, key, reply)] (tests). *)
