(** Cluster driver, client workload generator, and crash+partition storm
    harness: N hosts sharding the keyspace, closed-loop clients issuing
    Get/Set with configurable payload size, all messages marshalled
    through the in-memory network.

    Clients are hardened against an adversarial network: every request is
    retransmitted (same sequence number) on a timeout measured in drain
    rounds — the simulator's clock — with exponential backoff, and stale
    duplicate replies are filtered by sequence number.  Paired with the
    hosts' at-most-once reply cache this yields exactly-once execution
    under message loss, duplication, reordering, delay {e and} concurrent
    re-delegation (the [fig10-faults] bench section and the fault-mix
    tests exercise every combination).

    {b Storms} (PR 7): with [durability] set, each host runs over its own
    simulated PMEM device ({!Durable}); the [crash_pct]/[partition_pct]/
    [torn_pct] knobs arm per-poll-round fault sites (["host.crash"],
    ["net.partition"], ["pmem.torn"]) that crash hosts mid-operation,
    tear commit flushes, and partition victims for a drawn number of
    rounds — all while the client workload keeps running.  Every crash is
    immediately followed by recovery (replay of the committed log
    prefix), with recovery time, replayed records and epoch monotonicity
    accounted.  The crosscheck's closing {e readback sweep} then re-reads
    every acknowledged write: a miss is an acknowledged write lost to a
    crash, the invariant this harness exists to refute. *)

type dist = [ `Uniform | `Zipf of float ]
(** Key-pick distribution for the client loop.  [`Zipf s] draws ranks
    from a seeded inverse-CDF {!Vbase.Rng.zipf} sampler and scrambles
    them across the key-order shards (million-key skewed mode). *)

type durability = {
  du_group : int;  (** group-commit threshold (records per flush) *)
  du_mem_bytes : int;  (** per-host simulated PMEM device size *)
}

val default_durability : durability
(** group 4, 8 MiB devices. *)

type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
  retransmissions : int;  (** client-side retries (0 on a clean network) *)
  net_stats : (string * int) list;  (** {!Network.stats} counters *)
  lat_p50_ms : float;  (** per-request latency percentiles (wall clock) *)
  lat_p99_ms : float;
  crashes : int;  (** storm crashes, explicit + torn-flush power failures *)
  recoveries : int;  (** successful log replays (= crashes when all recover) *)
  recovery_s : float;  (** total wall-clock spent in {!Durable.recover}+replay *)
  replayed : int;  (** records replayed across all recoveries *)
  commits : int;  (** group commits across hosts (durable runs) *)
}

type storm_report = {
  sr_ops : int;  (** client operations acknowledged *)
  sr_crashes : int;  (** ["host.crash"] strikes *)
  sr_torn : int;  (** power failures at a commit flush (["pmem.torn"]) *)
  sr_partitions : int;  (** partitions opened (["net.partition"]) *)
  sr_recoveries : int;
  sr_recovery_s : float;
  sr_replayed : int;
  sr_readback : int;  (** acknowledged writes re-verified by the final sweep *)
  sr_retransmissions : int;
}

exception Client_timeout of string
(** Raised when a request stays unanswered through every retransmission
    (the backoff schedule gives up after ~14 attempts). *)

val crash_site : string
(** ["host.crash"] — consulted once per poll round while a storm is on;
    on fire, a drawn host is crashed (volatile state dropped) and
    immediately recovered by replay. *)

val partition_site : string
(** ["net.partition"] — on fire, a drawn host is partitioned from the
    rest of the cluster for [2 + draw 30] poll rounds. *)

val run :
  ?hosts:int ->
  ?clients:int ->
  ?keys:int ->
  ?payload:int ->
  ?ops:int ->
  ?get_ratio:float ->
  ?seed:int ->
  ?drop_pct:int ->
  ?net_dup_pct:int ->
  ?reorder_pct:int ->
  ?delay_pct:int ->
  ?fault_seed:int ->
  ?durability:durability ->
  ?dist:dist ->
  ?crash_pct:int ->
  ?partition_pct:int ->
  ?torn_pct:int ->
  style:Host.style ->
  unit ->
  result
(** Defaults: 3 hosts, 10 clients, 10_000 keys, 128-byte payloads, 20_000
    operations, 50% gets, no faults, volatile hosts, uniform keys.  The
    keyspace is pre-sharded evenly across hosts by delegation.  The
    [*_pct] knobs arm the corresponding network fault sites on a fresh
    fault plan seeded with [fault_seed] (see {!Network}); [durability]
    makes hosts durable (group commit over simulated PMEM); [crash_pct]/
    [partition_pct]/[torn_pct] arm the storm sites (see above). *)

val crosscheck :
  ?ops:int ->
  ?seed:int ->
  ?dup_pct:int ->
  ?drop_pct:int ->
  ?net_dup_pct:int ->
  ?reorder_pct:int ->
  ?delay_pct:int ->
  ?redelegate:bool ->
  ?fault_seed:int ->
  ?faults:Vbase.Faultplan.t ->
  ?durability:durability ->
  ?dist:dist ->
  ?crash_pct:int ->
  ?partition_pct:int ->
  ?torn_pct:int ->
  ?readback:bool ->
  unit ->
  (unit, string) Stdlib.result
(** Differential test: runs the same randomized workload against the
    cluster and against a flat reference map; [Error] describes the first
    divergence.  Exercises forwarding, delegation and at-most-once
    delivery under the armed fault mix:

    - [dup_pct] resends that percentage of client requests (unchanged
      sequence number — a flaky client channel);
    - [drop_pct]/[net_dup_pct]/[reorder_pct]/[delay_pct] arm the network
      fault sites (["net.drop"], ["net.dup"], ...) on a plan seeded with
      [fault_seed] — or pass an externally configured plan via [faults]
      (e.g. to inspect its {!Vbase.Faultplan.trace} afterwards);
    - [redelegate] (default on) re-delegates a random range from its
      current owner on ~1% of operations, {e concurrently} with in-flight
      and duplicated requests: the migrating reply cache plus sequenced
      inter-host channels must keep execution exactly once;
    - [durability] + [crash_pct]/[partition_pct]/[torn_pct] run the whole
      thing as a crash+partition storm over durable hosts, and [readback]
      (default on) closes with a sweep re-reading {e every} acknowledged
      write after the storm ends — [Error "... acknowledged write lost"]
      if recovery dropped one.

    The whole run is deterministic: same [seed]/[fault_seed] ⇒ same
    messages, same injected faults, same verdict. *)

val crosscheck_report :
  ?ops:int ->
  ?seed:int ->
  ?dup_pct:int ->
  ?drop_pct:int ->
  ?net_dup_pct:int ->
  ?reorder_pct:int ->
  ?delay_pct:int ->
  ?redelegate:bool ->
  ?fault_seed:int ->
  ?faults:Vbase.Faultplan.t ->
  ?durability:durability ->
  ?dist:dist ->
  ?crash_pct:int ->
  ?partition_pct:int ->
  ?torn_pct:int ->
  ?readback:bool ->
  unit ->
  storm_report * (unit, string) Stdlib.result
(** {!crosscheck} plus the storm accounting (crash/torn/partition/
    recovery counts, replayed records, readback size) — what the storm
    tests assert on and [kv_smoke] prints. *)

val recovery_probe : ?records:int -> ?payload:int -> ?group:int -> unit -> float * int
(** Isolated recovery-time measurement: append [records] Set records
    (default 20_000 × 64-byte payloads, group commit 64), crash, and time
    {!Durable.recover}.  Returns (seconds, records replayed). *)

val kv_bench_schema : string
(** ["verus-kv-bench/1"]. *)

val kv_bench_row : name:string -> acked_write_loss:int -> result -> Vbase.Json.t
(** One BENCH_kv.json row from a {!run} result.  [acked_write_loss] is 0
    iff the paired storm crosscheck's readback sweep found every
    acknowledged write (the bench section asserts it). *)

val kv_bench_doc : Vbase.Json.t list -> Vbase.Json.t
(** Wrap rows into the schema-tagged document {!validate_kv_bench}
    accepts. *)

val validate_kv_bench : Vbase.Json.t -> (unit, string) Stdlib.result
(** Validate a BENCH_kv.json document: [schema] must be
    {!kv_bench_schema} and every row must carry a [name] plus
    non-negative numeric [kops_per_s], [lat_p50_ms], [lat_p99_ms],
    [crashes], [recoveries], [recovery_s] and [acked_write_loss]. *)
