(** Cluster driver and client workload generator for the Figure 10
    benchmark: N hosts sharding the keyspace, closed-loop clients issuing
    Get/Set with configurable payload size, all messages marshalled through
    the in-memory network. *)

type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
}

val run :
  ?hosts:int ->
  ?clients:int ->
  ?keys:int ->
  ?payload:int ->
  ?ops:int ->
  ?get_ratio:float ->
  ?seed:int ->
  style:Host.style ->
  unit ->
  result
(** Defaults: 3 hosts, 10 clients, 10_000 keys, 128-byte payloads, 20_000
    operations, 50% gets.  The keyspace is pre-sharded evenly across hosts
    by delegation. *)

val crosscheck :
  ?ops:int -> ?seed:int -> ?dup_pct:int -> unit -> (unit, string) Stdlib.result
(** Differential test: runs the same randomized workload against the
    cluster and against a flat reference map; [Error] describes the first
    divergence.  Exercises forwarding, delegation and at-most-once
    delivery.  [dup_pct] resends that percentage of client requests with
    an unchanged sequence number (a flaky client channel); the at-most-once
    table must absorb every duplicate — no re-execution, no extra reply.
    Duplication disables the concurrent re-delegation (the per-host reply
    cache does not migrate with a shard; IronFleet relies on sequenced
    inter-host channels for that case). *)
