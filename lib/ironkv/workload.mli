(** Cluster driver and client workload generator for the Figure 10
    benchmark: N hosts sharding the keyspace, closed-loop clients issuing
    Get/Set with configurable payload size, all messages marshalled
    through the in-memory network.

    Clients are hardened against an adversarial network: every request is
    retransmitted (same sequence number) on a timeout measured in drain
    rounds — the simulator's clock — with exponential backoff, and stale
    duplicate replies are filtered by sequence number.  Paired with the
    hosts' at-most-once reply cache this yields exactly-once execution
    under message loss, duplication, reordering, delay {e and} concurrent
    re-delegation (the [fig10-faults] bench section and the fault-mix
    tests exercise every combination). *)

type result = {
  ops_done : int;
  elapsed_s : float;
  kops_per_s : float;
  net_bytes : int;
  retransmissions : int;  (** client-side retries (0 on a clean network) *)
  net_stats : (string * int) list;  (** {!Network.stats} counters *)
}

exception Client_timeout of string
(** Raised when a request stays unanswered through every retransmission
    (the backoff schedule gives up after ~14 attempts). *)

val run :
  ?hosts:int ->
  ?clients:int ->
  ?keys:int ->
  ?payload:int ->
  ?ops:int ->
  ?get_ratio:float ->
  ?seed:int ->
  ?drop_pct:int ->
  ?net_dup_pct:int ->
  ?reorder_pct:int ->
  ?delay_pct:int ->
  ?fault_seed:int ->
  style:Host.style ->
  unit ->
  result
(** Defaults: 3 hosts, 10 clients, 10_000 keys, 128-byte payloads, 20_000
    operations, 50% gets, no faults.  The keyspace is pre-sharded evenly
    across hosts by delegation.  The [*_pct] knobs arm the corresponding
    network fault sites on a fresh fault plan seeded with [fault_seed]
    (see {!Network}); [drop_pct] etc. make the clients retransmit, which
    shows up in [retransmissions] and throughput. *)

val crosscheck :
  ?ops:int ->
  ?seed:int ->
  ?dup_pct:int ->
  ?drop_pct:int ->
  ?net_dup_pct:int ->
  ?reorder_pct:int ->
  ?delay_pct:int ->
  ?redelegate:bool ->
  ?fault_seed:int ->
  ?faults:Vbase.Faultplan.t ->
  unit ->
  (unit, string) Stdlib.result
(** Differential test: runs the same randomized workload against the
    cluster and against a flat reference map; [Error] describes the first
    divergence.  Exercises forwarding, delegation and at-most-once
    delivery under the armed fault mix:

    - [dup_pct] resends that percentage of client requests (unchanged
      sequence number — a flaky client channel);
    - [drop_pct]/[net_dup_pct]/[reorder_pct]/[delay_pct] arm the network
      fault sites (["net.drop"], ["net.dup"], ...) on a plan seeded with
      [fault_seed] — or pass an externally configured plan via [faults]
      (e.g. to inspect its {!Vbase.Faultplan.trace} afterwards);
    - [redelegate] (default on) re-delegates a random range from its
      current owner on ~1% of operations, {e concurrently} with in-flight
      and duplicated requests: the migrating reply cache plus sequenced
      inter-host channels must keep execution exactly once.

    The whole run is deterministic: same [seed]/[fault_seed] ⇒ same
    messages, same injected faults, same verdict. *)
