(** The EPR-mode proof of the delegation map (§3.2, Figure 3).

    Following the paper's recipe: (a) the concrete pivot-list implementation
    lives in {!Delegation_map}; (b) this module abstracts keys into a
    totally ordered uninterpreted sort and the map into relations; (c) the
    abstraction's invariants and the postconditions of [new]/[set]/[get]
    are discharged {e fully automatically} by the EPR decision procedure
    ({!Smt.Epr}); (d) the test-suite ties (a) to (b) by checking the
    implementation against the abstract model on random workloads.

    Obligations proved (all decided, no manual proof):
    - the total-order axioms admit the floor-pivot coherence invariant;
    - [new] establishes the invariant (all keys to one host);
    - [set] preserves functionality of the map and the range semantics:
      keys inside the range move to the new host, keys outside keep theirs;
    - [get]'s postcondition follows from the invariant. *)

type obligation = { name : string; answer : Smt.Solver.answer; time_s : float }

val run : unit -> obligation list
(** Runs every EPR obligation; all should come back [Unsat] (proved). *)

val all_proved : obligation list -> bool

val boilerplate_lines : int
(** Size of the abstraction boilerplate (for the §4.1.3 comparison table —
    the paper reports ~100 lines of straightforward boilerplate for the
    distributed lock and a large win on the delegation map). *)
