(* The paper-reproduction benchmark harness: one section per table/figure
   of the evaluation (§4).  Run everything:

     dune exec bench/main.exe

   or a subset:

     dune exec bench/main.exe -- fig7a fig14 --quick

   --quick shrinks sweeps (used in CI-ish runs).  Every section prints the
   measured numbers next to what the paper reports; EXPERIMENTS.md records
   a full run.  Absolute numbers are expected to differ (our substrate is a
   from-scratch OCaml solver on a 1-CPU container); the shapes are the
   reproduction target. *)

let quick = ref false

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n%!" s) fmt

(* ------------------------------------------------------------------ *)
(* Verification-side helpers                                           *)
(* ------------------------------------------------------------------ *)

let verify_time ?(jobs = 1) profile prog =
  let config = Verus.Driver.Config.(with_jobs jobs default) in
  let r = Verus.Driver.verify_program ~config profile prog in
  (r.Verus.Driver.pr_ok, r.Verus.Driver.pr_time_s, r.Verus.Driver.pr_bytes)

(* ------------------------------------------------------------------ *)
(* Solver-profile collection                                           *)
(*                                                                     *)
(* The timed runs above stay profile-off (the opt-in costs nothing     *)
(* when off, but the bench numbers should measure exactly what the     *)
(* figures measured before).  Sections that want instantiation         *)
(* attribution run [verify_profiled] — a separate profiled pass whose  *)
(* wall-clock is never reported as a figure number — and every         *)
(* document collected this way is written to BENCH_profile.json at     *)
(* exit, in the same versioned verus-profile schema the CLI emits and  *)
(* the CI smoke validates.                                             *)
(* ------------------------------------------------------------------ *)

let profile_docs : (string * Vbase.Json.t) list ref = ref []

let verify_profiled ?(jobs = 1) ~section ~prog_name (p : Verus.Profiles.t) prog =
  let config =
    Verus.Driver.Config.(
      default |> with_jobs jobs |> with_lint Verus.Driver.Lint_warn |> with_profile true)
  in
  let r = Verus.Driver.verify_program ~config p prog in
  if r.Verus.Driver.pr_prof <> None then
    profile_docs := (section, Verus.Profile_report.to_json ~prog_name r) :: !profile_docs;
  r

(* A three-line hot-spot digest: enough to see *which* axiom dominated a
   row without the full `verus_cli profile` table. *)
let profile_digest ?(top = 3) (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_prof with
  | None -> ()
  | Some pp ->
    let smt = pp.Verus.Driver.pp_smt in
    let ph = smt.Smt.Profile.phase in
    Printf.printf
      "    %d instantiation(s) over %d round(s); euf %.2fs lia %.2fs ematch %.3fs\n"
      (Smt.Profile.total_instances smt)
      smt.Smt.Profile.inst_rounds ph.Smt.Profile.ph_euf ph.Smt.Profile.ph_lia
      ph.Smt.Profile.ph_ematch;
    List.iteri
      (fun i (q : Smt.Profile.quant_profile) ->
        let label = q.Smt.Profile.q_label in
        let label =
          if String.length label > 84 then String.sub label 0 81 ^ "..." else label
        in
        Printf.printf "      #%d %6d inst  %s\n" (i + 1) q.Smt.Profile.q_instances label)
      (Smt.Profile.top top smt);
    flush stdout

let write_profile_json () =
  if !profile_docs <> [] then begin
    let doc =
      Vbase.Json.Obj
        [
          ("schema", Vbase.Json.String "verus-profile-bench/1");
          ("per_document_schema", Vbase.Json.String Verus.Profile_report.schema_version);
          ( "documents",
            Vbase.Json.List
              (List.rev_map
                 (fun (section, d) ->
                   Vbase.Json.Obj
                     [ ("section", Vbase.Json.String section); ("profile", d) ])
                 !profile_docs) );
        ]
    in
    let oc = open_out "BENCH_profile.json" in
    output_string oc (Vbase.Json.to_string ~indent:true doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %d profile document(s) to BENCH_profile.json\n%!"
      (List.length !profile_docs)
  end

(* Verification timings on small programs are noisy (hashtable iteration
   orders steer the search); report the best of three runs, as benchmark
   harnesses for solvers usually do. *)
let verify_time3 ?jobs profile prog =
  let runs = List.init (if !quick then 1 else 3) (fun _ -> verify_time ?jobs profile prog) in
  List.fold_left
    (fun (bok, bt, bb) (ok, t, b) -> if t < bt then (ok, t, b) else (bok, bt, bb))
    (List.hd runs) (List.tl runs)

let status_cell (ok, time, _) = if ok then Printf.sprintf "%8.2fs" time else "   FAIL "

(* A per-profile verification-time budget: heavyweight profiles that blow
   through it are reported as "timeout" (which is itself the result the
   paper reports for some tools, e.g. Low* on the memory benchmark). *)
let with_deadline seconds f =
  let result = ref None in
  let d = Domain.spawn (fun () -> result := Some (f ())) in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    if !result <> None then Domain.join d
    else if Unix.gettimeofday () -. t0 > seconds then raise Exit
    else begin
      Unix.sleepf 0.05;
      wait ()
    end
  in
  (try wait () with Exit -> ());
  !result
[@@warning "-unused-value-declaration"]

(* ------------------------------------------------------------------ *)
(* fig7a: linked-list verification times across frameworks             *)
(* ------------------------------------------------------------------ *)

let fig7a () =
  header "Figure 7a: verification time (s), singly / doubly linked list";
  Printf.printf "  paper: Verus 0.66/1.15  Creusot 1.88/30.8  Dafny 3.83/28.1  Low* 7.16/70.2  Prusti 18.8/n-a  (Ivy: cannot express)\n\n";
  Printf.printf "  %-10s %-14s %-14s\n" "profile" "single" "double";
  let profiles = Verus.Profiles.all in
  List.iter
    (fun (p : Verus.Profiles.t) ->
      let cell prog =
        let r = verify_time3 p prog in
        let ok, t, _ = r in
        if ok then Printf.sprintf "%.2fs" t
        else begin
          (* Distinguish 'cannot express' (Ivy) from slow/failed. *)
          let pr = Verus.Driver.verify_program p prog in
          match Verus.Driver.first_failure pr with
          | Some (_, _, _) when p.Verus.Profiles.epr_only -> "n/a (EPR)"
          | _ -> Printf.sprintf "fail(%.0fs)" t
        end
      in
      let single = cell Verus.Bench_programs.singly_linked in
      let double =
        if p.Verus.Profiles.epr_only then "n/a (EPR)"
        else cell Verus.Bench_programs.doubly_linked
      in
      Printf.printf "  %-10s %-14s %-14s\n%!" p.Verus.Profiles.name single double)
    profiles;
  (* Where the time goes: a profiled pass (not counted in the numbers
     above) for the two encodings the paper contrasts most directly. *)
  Printf.printf "\n  instantiation hot-spots (singly linked; profiled pass, untimed):\n";
  List.iter
    (fun (p : Verus.Profiles.t) ->
      Printf.printf "  %s:\n" p.Verus.Profiles.name;
      profile_digest
        (verify_profiled ~section:"fig7a" ~prog_name:"singly_linked" p
           Verus.Bench_programs.singly_linked))
    [ Verus.Profiles.verus; Verus.Profiles.dafny ]

(* ------------------------------------------------------------------ *)
(* fig7b: memory reasoning, time vs pushes                              *)
(* ------------------------------------------------------------------ *)

let fig7b () =
  header "Figure 7b: memory-reasoning verification time vs number of pushes";
  Printf.printf
    "  paper: Verus stays linear (~1.6 ms/push); Dafny grows dramatically; Low* fails beyond one push.\n\n";
  let pushes = if !quick then [ 2; 4 ] else [ 4; 8; 12; 16 ] in
  (* Bound each verification condition at 20s so the sweep terminates;
     profiles that exceed it report failure — the counterpart of "Low*
     fails to return beyond one push" in the paper. *)
  let cap (p : Verus.Profiles.t) =
    Verus.Profiles.with_budget { (Verus.Profiles.budget p) with Smt.Solver.deadline_s = 20.0 } p
  in
  let profiles =
    List.map cap
      [ Verus.Profiles.verus; Verus.Profiles.creusot; Verus.Profiles.prusti; Verus.Profiles.dafny ]
  in
  Printf.printf "  %-10s" "pushes";
  List.iter (fun n -> Printf.printf " %10d" n) pushes;
  Printf.printf "\n";
  List.iter
    (fun (p : Verus.Profiles.t) ->
      Printf.printf "  %-10s" p.Verus.Profiles.name;
      List.iter
        (fun n ->
          (* Single runs: these verifications are long enough that noise
             is small relative to the trend. *)
          let r = verify_time p (Verus.Bench_programs.memory_reasoning n) in
          Printf.printf " %10s" (status_cell r);
          flush stdout)
        pushes;
      Printf.printf "\n%!")
    profiles

(* ------------------------------------------------------------------ *)
(* fig8: time to report an error on broken proofs                       *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header "Figure 8: time to failure report on broken proofs (pop / index)";
  Printf.printf
    "  paper: Verus/Dafny/Prusti report errors as fast as success; Low* and Creusot degrade.\n\n";
  Printf.printf "  %-10s %-12s %-12s %-12s\n" "profile" "success" "break pop" "break index";
  List.iter
    (fun (p : Verus.Profiles.t) ->
      if not p.Verus.Profiles.epr_only then begin
        let _, t_ok, _ = verify_time3 p Verus.Bench_programs.singly_linked in
        let time_broken prog =
          let r = Verus.Driver.verify_program p prog in
          (* Failure expected; report wall time to the failure. *)
          (Verus.Driver.first_failure r <> None, r.Verus.Driver.pr_time_s)
        in
        let failed1, t1 = time_broken Verus.Bench_programs.break_pop in
        let failed2, t2 = time_broken Verus.Bench_programs.break_index in
        Printf.printf "  %-10s %10.2fs %10.2fs%s %10.2fs%s\n%!" p.Verus.Profiles.name t_ok t1
          (if failed1 then "" else "!")
          t2
          (if failed2 then "" else "!")
      end)
    [ Verus.Profiles.verus; Verus.Profiles.creusot; Verus.Profiles.dafny; Verus.Profiles.fstar; Verus.Profiles.prusti ]

(* ------------------------------------------------------------------ *)
(* fig9: macrobenchmark table                                           *)
(* ------------------------------------------------------------------ *)

let count_lines dir =
  (* Source lines of the library implementing a case study. *)
  try
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.fold_left
         (fun acc f ->
           let ic = open_in (Filename.concat dir f) in
           let n = ref 0 in
           (try
              while true do
                ignore (input_line ic);
                incr n
              done
            with End_of_file -> ());
           close_in ic;
           acc + !n)
         0
  with Sys_error _ -> 0

let fig9 () =
  header "Figure 9: macrobenchmark statistics (per case study)";
  Printf.printf
    "  paper: Verus verifies each ported/new system 10-100x faster than the original tools,\n";
  Printf.printf "  with ~95%% smaller SMT queries; see EXPERIMENTS.md for the line-count mapping.\n\n";
  Printf.printf "  %-12s %8s %10s %10s %10s  %s\n" "system" "LoC" "obligs" "1-core" "8-core" "notes";
  let row name dir f =
    let loc = count_lines dir in
    let t0 = Unix.gettimeofday () in
    let n_ob, ok = f 1 in
    let t1 = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    let _ = f 8 in
    let t8 = Unix.gettimeofday () -. t0 in
    Printf.printf "  %-12s %8d %10d %9.2fs %9.2fs  %s\n%!" name loc n_ob t1 t8
      (if ok then "all proved" else "FAILURES")
  in
  (* IronKV: the delegation-map EPR proof plus the default-mode distributed
     lock (its protocol cousin). *)
  row "IronKV" "lib/ironkv" (fun _jobs ->
      let obs = Ironkv.Delegation_proof.run () in
      let marsh = Ironkv.Marshal_proofs.run () in
      let lock = Verus.Dlock_epr.run () in
      let r = Verus.Driver.verify_program Verus.Profiles.verus Verus.Bench_programs.dlock_default in
      ( List.length obs + List.length marsh + List.length lock
        + List.length (List.concat_map (fun f -> f.Verus.Driver.fnr_vcs) r.Verus.Driver.pr_fns),
        Ironkv.Delegation_proof.all_proved obs
        && Ironkv.Marshal_proofs.all_proved marsh
        && Verus.Dlock_epr.all_proved lock && r.Verus.Driver.pr_ok ));
  (* NR: the VerusSync protocol obligations + refinement to the atomic
     log spec. *)
  row "NR" "lib/nr" (fun _jobs ->
      let rep = Nr_lib.Nr_model.check ~replicas:4 () in
      let refn = Nr_lib.Nr_model.check_refinement ~replicas:4 () in
      ( List.length rep.Verus.Vsync.obligations + List.length refn.Verus.Vsync.obligations,
        rep.Verus.Vsync.ok && refn.Verus.Vsync.ok ));
  (* Page table: the 3.3-mode battery + the DLL program and the vstd seq
     lemma library stand in for its data-structure proofs. *)
  row "Page table" "lib/pagetable" (fun jobs ->
      let obs = Pagetable.Pagetable_proofs.run () in
      let config = Verus.Driver.Config.(with_jobs jobs default) in
      let r = Verus.Driver.verify_program ~config Verus.Profiles.verus Verus.Bench_programs.doubly_linked in
      let r2 = Verus.Vstd_seq.verify () in
      ( List.length obs
        + List.length (List.concat_map (fun f -> f.Verus.Driver.fnr_vcs) r.Verus.Driver.pr_fns)
        + List.length (List.concat_map (fun f -> f.Verus.Driver.fnr_vcs) r2.Verus.Driver.pr_fns),
        Pagetable.Pagetable_proofs.all_proved obs && r.Verus.Driver.pr_ok && r2.Verus.Driver.pr_ok ));
  (* Mimalloc: delayed-free protocol + the memory-reasoning program. *)
  row "Mimalloc" "lib/valloc" (fun jobs ->
      let rep = Valloc.Alloc_model.check ~capacity:4096 () in
      let config = Verus.Driver.Config.(with_jobs jobs default) in
      let r = Verus.Driver.verify_program ~config Verus.Profiles.verus (Verus.Bench_programs.memory_reasoning 4) in
      ( List.length rep.Verus.Vsync.obligations
        + List.length (List.concat_map (fun f -> f.Verus.Driver.fnr_vcs) r.Verus.Driver.pr_fns),
        rep.Verus.Vsync.ok && r.Verus.Driver.pr_ok ));
  (* Persistent log: the CRC table by(compute), all 256 entries. *)
  row "P. log" "lib/plog" (fun _jobs ->
      let rs = Plog.Crc_proof.check_all () in
      (List.length rs, Plog.Crc_proof.all_proved rs))

(* ------------------------------------------------------------------ *)
(* fig10: IronKV throughput                                             *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10: IronKV throughput (kop/s), Get/Set x payload size";
  Printf.printf
    "  paper: the Verus port performs comparably to the IronFleet original (both ~2-4 kop/s there).\n\n";
  let ops = if !quick then 3_000 else 20_000 in
  Printf.printf "  %-22s %10s %10s %10s\n" "workload" "128B" "256B" "512B";
  List.iter
    (fun (label, style, get_ratio) ->
      Printf.printf "  %-22s" label;
      List.iter
        (fun payload ->
          let r = Ironkv.Workload.run ~style ~payload ~ops ~get_ratio () in
          Printf.printf " %9.1fk" r.Ironkv.Workload.kops_per_s;
          flush stdout)
        [ 128; 256; 512 ];
      Printf.printf "\n%!")
    [
      ("Get (Verus port)", `Inplace, 1.0);
      ("Get (IronFleet-style)", `Copying, 1.0);
      ("Set (Verus port)", `Inplace, 0.0);
      ("Set (IronFleet-style)", `Copying, 0.0);
    ]

(* ------------------------------------------------------------------ *)
(* fig10-faults: IronKV under an adversarial network                    *)
(* ------------------------------------------------------------------ *)

let fig10_faults () =
  header "Figure 10 (faults): IronKV throughput (kop/s) under message drop + duplication";
  Printf.printf
    "  deterministic fault plan (seeded); clients retransmit with exponential backoff,\n\
    \  hosts absorb duplicates via the at-most-once reply cache.\n\n";
  let ops = if !quick then 2_000 else 10_000 in
  Printf.printf "  %-14s %10s %14s %12s\n" "drop+dup %" "kop/s" "retransmits" "net msgs";
  List.iter
    (fun pct ->
      let r =
        Ironkv.Workload.run ~style:`Inplace ~ops ~payload:128 ~get_ratio:0.5 ~drop_pct:pct
          ~net_dup_pct:pct ~fault_seed:(100 + pct) ()
      in
      let sent =
        match List.assoc_opt "sent" r.Ironkv.Workload.net_stats with Some n -> n | None -> 0
      in
      Printf.printf "  %-14d %9.1fk %14d %12d\n%!" pct r.Ironkv.Workload.kops_per_s
        r.Ironkv.Workload.retransmissions sent)
    [ 0; 1; 5; 20 ]

(* ------------------------------------------------------------------ *)
(* kv: durable IronKV — group commit, storms, recovery                  *)
(* ------------------------------------------------------------------ *)

let kv_bench () =
  header "Durable IronKV: group commit throughput, crash+partition storms, recovery";
  Printf.printf
    "  Hosts persist every acknowledged mutation to per-host logs over simulated PMEM\n\
    \  (group commit, deferred sends); storms crash/partition hosts mid-workload and\n\
    \  every crash recovers by replaying the committed log prefix.  acked_write_loss\n\
    \  comes from the storm crosscheck's readback sweep and must be 0.\n\n";
  let module W = Ironkv.Workload in
  let ops = if !quick then 2_000 else 12_000 in
  let zkeys = if !quick then 100_000 else 1_000_000 in
  let dur group = { W.du_group = group; du_mem_bytes = 1 lsl 24 } in
  Printf.printf "  %-24s %9s %9s %9s %8s %6s %9s\n" "configuration" "kop/s" "p50 ms" "p99 ms"
    "crashes" "recov" "replayed";
  let rows = ref [] in
  let add name r loss =
    Printf.printf "  %-24s %8.1fk %9.4f %9.4f %8d %6d %9d\n%!" name r.W.kops_per_s
      r.W.lat_p50_ms r.W.lat_p99_ms r.W.crashes r.W.recoveries r.W.replayed;
    rows := W.kv_bench_row ~name ~acked_write_loss:loss r :: !rows
  in
  add "volatile" (W.run ~style:`Inplace ~ops ()) 0;
  add "durable group=1" (W.run ~style:`Inplace ~ops ~durability:(dur 1) ()) 0;
  add "durable group=8" (W.run ~style:`Inplace ~ops ~durability:(dur 8) ()) 0;
  add
    (Printf.sprintf "durable zipf %dk keys" (zkeys / 1000))
    (W.run ~style:`Inplace ~ops ~keys:zkeys ~durability:(dur 8) ~dist:(`Zipf 1.1) ())
    0;
  (* The storm row's acked_write_loss is pinned by a paired differential
     crosscheck under the same fault classes: its closing readback sweep
     re-reads every acknowledged write after the storm. *)
  let report, verdict =
    W.crosscheck_report
      ~ops:(if !quick then 300 else 800)
      ~seed:29 ~fault_seed:78 ~durability:(dur 4) ~crash_pct:2 ~partition_pct:1 ~torn_pct:1 ()
  in
  let loss = match verdict with Ok () -> 0 | Error _ -> 1 in
  add "storm crash+part+torn"
    (W.run ~style:`Inplace ~ops:(ops / 2) ~durability:(dur 4) ~crash_pct:1 ~partition_pct:1
       ~torn_pct:1 ~fault_seed:77 ())
    loss;
  (match verdict with
  | Ok () ->
    Printf.printf
      "  storm crosscheck: %d acked writes re-verified, 0 lost (%d crashes, %d recoveries)\n%!"
      report.W.sr_readback
      (report.W.sr_crashes + report.W.sr_torn)
      report.W.sr_recoveries
  | Error e -> Printf.printf "  !! storm crosscheck FAILED: %s\n%!" e);
  Printf.printf "\n  recovery time vs. log size (isolated probe, group=64):\n";
  Printf.printf "  %-12s %12s %14s\n" "records" "recover s" "records/s";
  let probes =
    List.map
      (fun records ->
        let secs, replayed = W.recovery_probe ~records ~payload:64 ~group:64 () in
        Printf.printf "  %-12d %12.4f %14.0f\n%!" records secs
          (float_of_int replayed /. max secs 1e-9);
        Vbase.Json.Obj
          [ ("records", Vbase.Json.Int records); ("seconds", Vbase.Json.Float secs) ])
      (if !quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ])
  in
  let doc =
    match W.kv_bench_doc (List.rev !rows) with
    | Vbase.Json.Obj fields ->
      Vbase.Json.Obj (fields @ [ ("recovery_probe", Vbase.Json.List probes) ])
    | j -> j
  in
  (match W.validate_kv_bench doc with
  | Ok () -> ()
  | Error e -> Printf.printf "  !! BENCH_kv.json failed self-validation: %s\n%!" e);
  let oc = open_out "BENCH_kv.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote %d row(s) to BENCH_kv.json\n%!" (List.length !rows)

(* ------------------------------------------------------------------ *)
(* fig11: NR throughput                                                 *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Figure 11: NR throughput (Mop/s) vs threads, at 0%/10%/100% writes";
  Printf.printf
    "  paper: Verus-NR matches unverified NR, both far above a global lock for read-heavy loads.\n";
  note "this container exposes %d CPU(s); domain scaling is bounded by that (DESIGN.md)."
    (Domain.recommended_domain_count ());
  let threads = if !quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let ops = if !quick then 20_000 else 50_000 in
  List.iter
    (fun write_pct ->
      Printf.printf "\n  -- %d%% writes --\n" write_pct;
      Printf.printf "  %-14s" "threads";
      List.iter (fun t -> Printf.printf " %8d" t) threads;
      Printf.printf "\n";
      List.iter
        (fun (label, f) ->
          Printf.printf "  %-14s" label;
          List.iter
            (fun t ->
              let r = f ~threads:t ~ops_per_thread:ops ~write_pct in
              Printf.printf " %8.2f" r.Nr_lib.Nr_bench.mops_per_s;
              flush stdout)
            threads;
          Printf.printf "\n%!")
        [
          ("Verus-NR", Nr_lib.Nr_bench.nr);
          ("NR (unverif.)", Nr_lib.Nr_bench.nr_unverified);
          ("global mutex", Nr_lib.Nr_bench.mutex_baseline);
        ])
    [ 0; 10; 100 ]

(* ------------------------------------------------------------------ *)
(* fig12: page table latency                                            *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "Figure 12: page table map/unmap mean latency";
  Printf.printf
    "  paper: verified map matches the unverified reference; verified unmap is slower because it\n";
  Printf.printf "  reclaims empty directories (disabling reclamation restores parity).\n\n";
  let n = if !quick then 20_000 else 100_000 in
  let run_map_unmap make_pt map unmap =
    let mem = Pagetable.Phys_mem.create ~frames:(4 * n) () in
    let pt = make_pt mem in
    let vas = Array.init n (fun i -> 0x1000_0000 + (i * 4096)) in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun va -> ignore (map pt ~va ~frame:7 ~writable:true)) vas;
    let t_map = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9 in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun va -> ignore (unmap pt ~va)) vas;
    let t_unmap = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9 in
    (t_map, t_unmap)
  in
  let rows =
    [
      ( "verified",
        run_map_unmap (fun m -> Pagetable.Impl.create m) Pagetable.Impl.map4k Pagetable.Impl.unmap4k );
      ( "verified, no reclaim",
        run_map_unmap
          (fun m -> Pagetable.Impl.create ~reclaim:false m)
          Pagetable.Impl.map4k Pagetable.Impl.unmap4k );
      ( "unverified reference",
        run_map_unmap (fun m -> Pagetable.Baseline.create m) Pagetable.Baseline.map4k
          Pagetable.Baseline.unmap4k );
    ]
  in
  Printf.printf "  %-24s %12s %12s\n" "implementation" "map4k (ns)" "unmap4k (ns)";
  List.iter
    (fun (label, (m, u)) -> Printf.printf "  %-24s %12.0f %12.0f\n%!" label m u)
    rows

(* ------------------------------------------------------------------ *)
(* fig13: allocator workloads                                           *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  header "Figure 13: allocator benchmarks (seconds; lower is better)";
  Printf.printf
    "  paper: Verus-mimalloc is 1-14x slower than C mimalloc per workload; here 'unchecked' plays\n";
  Printf.printf
    "  the unverified original and 'checked' carries the verified version's bookkeeping.\n\n";
  let threads = if !quick then 2 else 4 in
  Printf.printf "  %-18s %12s %12s %14s\n" "workload" "unchecked" "checked" "single-heap";
  List.iter
    (fun name ->
      let t_un = Valloc.Workloads.run ~name { checked = false; heaps = 4; threads } in
      let t_ck = Valloc.Workloads.run ~name { checked = true; heaps = 4; threads } in
      let t_1h = Valloc.Workloads.run ~name { checked = false; heaps = 1; threads } in
      Printf.printf "  %-18s %11.2fs %11.2fs %13.2fs\n%!" name t_un t_ck t_1h)
    Valloc.Workloads.names

(* ------------------------------------------------------------------ *)
(* fig14: persistent log append throughput                              *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  header "Figure 14: log append throughput (MiB/s) vs append size";
  Printf.printf
    "  paper: the latest verified log matches libpmemlog despite computing CRCs (it uses no locks);\n";
  Printf.printf "  the initial copy-heavy version is slower on small appends.\n\n";
  let sizes = [ 128; 256; 512; 1024; 4096; 8192; 65536 ] in
  let total = if !quick then 8 * 1024 * 1024 else 64 * 1024 * 1024 in
  let throughput style size =
    let region = 16 * 1024 * 1024 in
    let mem = Plog.Pmem.create ~size:(region + Plog.Log.header_bytes) () in
    Plog.Log.format mem ~base:0 ~len:(region + Plog.Log.header_bytes);
    let log = Result.get_ok (Plog.Log.attach ~style mem ~base:0 ~len:(region + Plog.Log.header_bytes)) in
    let payload = String.make size 'd' in
    let n = total / size in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      (match Plog.Log.append log payload with
      | Ok () -> ()
      | Error _ ->
        (* Wrap: free half the log and retry. *)
        ignore (Plog.Log.advance_head log (Plog.Log.tail log - (region / 2)));
        ignore (Plog.Log.append log payload));
      ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (n * size) /. dt /. (1024.0 *. 1024.0)
  in
  Printf.printf "  %-12s" "append size";
  List.iter (fun s -> Printf.printf " %9s" (if s >= 1024 then Printf.sprintf "%dKiB" (s / 1024) else Printf.sprintf "%dB" s)) sizes;
  Printf.printf "\n";
  List.iter
    (fun (label, style) ->
      Printf.printf "  %-12s" label;
      List.iter
        (fun s ->
          Printf.printf " %9.0f" (throughput style s);
          flush stdout)
        sizes;
      Printf.printf "\n%!")
    [ ("PMDK-style", `Pmdk); ("initial", `Initial); ("latest", `Latest) ]

(* ------------------------------------------------------------------ *)
(* tab-epr: distributed lock, default vs EPR mode                      *)
(* ------------------------------------------------------------------ *)

let tab_epr () =
  header "Table (4.1.3): distributed lock - default mode vs EPR mode";
  let t0 = Unix.gettimeofday () in
  let r = Verus.Driver.verify_program Verus.Profiles.verus Verus.Bench_programs.dlock_default in
  let t_default = Unix.gettimeofday () -. t0 in
  Printf.printf "  default mode: %s in %.2fs (inductive invariant + helper assertion, ~25 proof lines)\n"
    (if r.Verus.Driver.pr_ok then "proved" else "FAILED")
    t_default;
  let t0 = Unix.gettimeofday () in
  let lock_obs = Verus.Dlock_epr.run () in
  let t_lock = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  EPR mode (lock, hand-off + message protocol): %d obligations decided automatically in %.2fs %s\n"
    (List.length lock_obs) t_lock
    (if Verus.Dlock_epr.all_proved lock_obs then "" else "(FAILURES)");
  Printf.printf "  abstraction boilerplate: ~%d lines (paper: ~100 lines for the lock)\n"
    Verus.Dlock_epr.boilerplate_lines;
  let t0 = Unix.gettimeofday () in
  let obs = Ironkv.Delegation_proof.run () in
  let t_epr = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  EPR mode (delegation map, Fig. 3): %d obligations decided automatically in %.2fs\n"
    (List.length obs) t_epr;
  Printf.printf
    "  => EPR trades boilerplate for fully automatic invariant checking, as in the paper.\n%!"

(* ------------------------------------------------------------------ *)
(* ablations: each design choice of §3.1 isolated                      *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation: isolating the design choices of §3.1 (on the singly linked list)";
  Printf.printf
    "  Each row toggles ONE choice off the Verus profile; time and instantiation work show its cost.\n\n";
  let base = Verus.Profiles.verus in
  let variants =
    [
      ("Verus (all on)", base);
      ( "liberal triggers",
        {
          base with
          Verus.Profiles.name = "V-libtrig";
          trigger_policy = Smt.Triggers.Liberal;
          curated_triggers = false;
          solver_config =
            { base.Verus.Profiles.solver_config with trigger_policy = Smt.Triggers.Liberal };
        } );
      ("no pruning", { base with Verus.Profiles.name = "V-noprune"; pruning = false });
      ("heap encoding", { base with Verus.Profiles.name = "V-heap"; encoding = Verus.Profiles.Heap });
      ( "prophecy encoding",
        { base with Verus.Profiles.name = "V-prophecy"; encoding = Verus.Profiles.Prophecy } );
      ( "effect wrappers (depth 2)",
        { base with Verus.Profiles.name = "V-wrap"; wrapper_depth = 2 } );
    ]
  in
  Printf.printf "  %-26s %10s %14s %14s\n" "variant" "time" "query bytes" "instances";
  List.iter
    (fun (label, p) ->
      (* One profiled run per variant: the ablation's whole point is to
         show the instantiation work each disabled mechanism causes, so
         here the "instances" column is measured on the same run as the
         time (the counters are always-on matcher fields; the only
         profiled-run overhead is the final aggregation). *)
      let r =
        verify_profiled ~section:"ablation" ~prog_name:"singly_linked" p
          Verus.Bench_programs.singly_linked
      in
      let insts =
        match r.Verus.Driver.pr_prof with
        | Some pp -> Smt.Profile.total_instances pp.Verus.Driver.pp_smt
        | None -> 0
      in
      Printf.printf "  %-26s %9.2fs %14d %14d%s\n%!" label r.Verus.Driver.pr_time_s
        r.Verus.Driver.pr_bytes insts
        (if r.Verus.Driver.pr_ok then "" else "  (FAILED)"))
    variants

(* ------------------------------------------------------------------ *)
(* lint: Vlint static-analysis cost vs verification cost               *)
(* ------------------------------------------------------------------ *)

let lint_bench () =
  header "Vlint: static-analysis time vs verification time (Verus profile)";
  Printf.printf
    "  The lint passes (termination SCCs, instantiation-graph matching-loop scan,\n";
  Printf.printf
    "  mode + hygiene checks) run before any SMT work; they should be noise next\n";
  Printf.printf "  to verification, which is what makes --lint strict free to leave on.\n\n";
  let programs =
    [
      ("singly_linked", Verus.Bench_programs.singly_linked);
      ("doubly_linked", Verus.Bench_programs.doubly_linked);
      ("mem8", Verus.Bench_programs.memory_reasoning 8);
      ("dlock", Verus.Bench_programs.dlock_default);
      ("vstd_seq", Verus.Vstd_seq.program);
    ]
  in
  let reps = if !quick then 10 else 100 in
  Printf.printf "  %-16s %12s %12s %10s\n" "program" "lint (ms)" "verify (s)" "findings";
  List.iter
    (fun (name, prog) ->
      let t0 = Unix.gettimeofday () in
      let ds = ref [] in
      for _ = 1 to reps do
        ds := Verus.Vlint.lint Verus.Profiles.verus prog
      done;
      let t_lint = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e3 in
      let _, t_verify, _ = verify_time Verus.Profiles.verus prog in
      Printf.printf "  %-16s %12.2f %11.2fs %10d\n%!" name t_lint t_verify
        (List.length !ds))
    programs

(* ------------------------------------------------------------------ *)
(* cache: cold vs warm re-verification through Vcache                   *)
(* ------------------------------------------------------------------ *)

let cache_bench () =
  header "Vcache: cold vs warm re-verification (persistent VC-result cache)";
  Printf.printf
    "  Each row verifies a program twice through the same cache directory: the cold run\n\
    \  fills the store, the warm run must serve every obligation from it.  'digest' says\n\
    \  whether the two runs' result digests (every decision: per-VC answers, verdicts,\n\
    \  lint and front-end output) are identical — the cache must be observationally\n\
    \  invisible.\n\n";
  let base_dir = Filename.concat (Filename.get_temp_dir_name ()) "verus-bench-cache" in
  let cases =
    [
      ("singly_linked", Verus.Bench_programs.singly_linked);
      ("doubly_linked", Verus.Bench_programs.doubly_linked);
      ("mem8", Verus.Bench_programs.memory_reasoning 8);
      ("vstd_seq", Verus.Vstd_seq.program);
      ("dlock", Verus.Bench_programs.dlock_default);
    ]
  in
  let cases = if !quick then [ List.hd cases ] else cases in
  Printf.printf "  %-16s %10s %10s %9s %9s %7s %7s\n" "program" "cold" "warm" "speedup"
    "hit rate" "entries" "digest";
  let rows =
    List.map
      (fun (name, prog) ->
        let dir = Filename.concat base_dir name in
        (match Verus.Vcache.clear ~dir with Ok () -> () | Error _ -> ());
        let config = Verus.Driver.Config.(with_cache dir default) in
        let run () = Verus.Driver.verify_program ~config Verus.Profiles.verus prog in
        let cold = run () in
        let warm = run () in
        let stats r =
          match r.Verus.Driver.pr_cache with
          | Some s -> s
          | None -> failwith "cache bench: run carried no cache stats"
        in
        let ws = stats warm in
        let looked = ws.Verus.Vcache.hits + ws.Verus.Vcache.misses + ws.Verus.Vcache.invalidations in
        let hit_rate =
          if looked = 0 then 0.0 else float_of_int ws.Verus.Vcache.hits /. float_of_int looked
        in
        let digest_equal =
          String.equal (Verus.Driver.result_digest cold) (Verus.Driver.result_digest warm)
        in
        let speedup =
          if warm.Verus.Driver.pr_time_s > 0.0 then
            cold.Verus.Driver.pr_time_s /. warm.Verus.Driver.pr_time_s
          else infinity
        in
        Printf.printf "  %-16s %9.3fs %9.3fs %8.1fx %8.0f%% %7d %7s\n%!" name
          cold.Verus.Driver.pr_time_s warm.Verus.Driver.pr_time_s speedup (100.0 *. hit_rate)
          ws.Verus.Vcache.entries_loaded
          (if digest_equal then "equal" else "DIFFERS");
        Vbase.Json.Obj
          [
            ("program", Vbase.Json.String name);
            ("profile", Vbase.Json.String Verus.Profiles.verus.Verus.Profiles.name);
            ("ok", Vbase.Json.Bool (cold.Verus.Driver.pr_ok && warm.Verus.Driver.pr_ok));
            ("cold_s", Vbase.Json.Float cold.Verus.Driver.pr_time_s);
            ("warm_s", Vbase.Json.Float warm.Verus.Driver.pr_time_s);
            ("speedup", Vbase.Json.Float speedup);
            ("hit_rate", Vbase.Json.Float hit_rate);
            ("hits", Vbase.Json.Int ws.Verus.Vcache.hits);
            ("misses", Vbase.Json.Int ws.Verus.Vcache.misses);
            ("invalidations", Vbase.Json.Int ws.Verus.Vcache.invalidations);
            ("entries", Vbase.Json.Int ws.Verus.Vcache.entries_loaded);
            ("digest_equal", Vbase.Json.Bool digest_equal);
          ])
      cases
  in
  let doc =
    Vbase.Json.Obj
      [
        ("schema", Vbase.Json.String "verus-cache-bench/1");
        ("store_schema", Vbase.Json.String Verus.Vcache.schema_version);
        ("rows", Vbase.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote %d row(s) to BENCH_cache.json\n%!" (List.length rows)

(* ------------------------------------------------------------------ *)
(* certify: proof-certificate emission + kernel replay overhead         *)
(* ------------------------------------------------------------------ *)

let certify_bench () =
  header "Vcert/Vcheck: certificate emission + independent kernel replay overhead";
  Printf.printf
    "  Each row verifies a program twice: plain, then with --certify (solver records a\n\
    \  derivation log per Unsat, the Vcheck kernel replays each).  'overhead' is the\n\
    \  certified run's wall-clock over the plain run's; 'checked' counts obligations\n\
    \  whose certificate replayed to Checked (a single rejection fails the row).\n\n";
  let cases =
    [
      ("singly_linked", Verus.Bench_programs.singly_linked);
      ("doubly_linked", Verus.Bench_programs.doubly_linked);
      ("mem8", Verus.Bench_programs.memory_reasoning 8);
      ("vstd_seq", Verus.Vstd_seq.program);
      ("dlock", Verus.Bench_programs.dlock_default);
    ]
  in
  let cases = if !quick then [ List.hd cases ] else cases in
  Printf.printf "  %-16s %10s %10s %9s %8s %9s\n" "program" "plain" "certified" "overhead"
    "checked" "rejected";
  let rows =
    List.map
      (fun (name, prog) ->
        let run certify =
          let config = Verus.Driver.Config.(default |> with_certify certify) in
          Verus.Driver.verify_program ~config Verus.Profiles.verus prog
        in
        let plain = run false in
        let certified = run true in
        let checked = ref 0 and rejected = ref 0 in
        List.iter
          (fun (fnr : Verus.Driver.fn_result) ->
            List.iter
              (fun (v : Verus.Driver.vc_result) ->
                match v.Verus.Driver.vcr_cert with
                | Verus.Driver.Cert_checked _ -> incr checked
                | Verus.Driver.Cert_rejected _ | Verus.Driver.Cert_unavailable _ ->
                  incr rejected
                | _ -> ())
              fnr.Verus.Driver.fnr_vcs)
          certified.Verus.Driver.pr_fns;
        let overhead =
          if plain.Verus.Driver.pr_time_s > 0.0 then
            certified.Verus.Driver.pr_time_s /. plain.Verus.Driver.pr_time_s
          else 1.0
        in
        Printf.printf "  %-16s %9.3fs %9.3fs %8.2fx %8d %9d\n%!" name
          plain.Verus.Driver.pr_time_s certified.Verus.Driver.pr_time_s overhead !checked
          !rejected;
        Vbase.Json.Obj
          [
            ("program", Vbase.Json.String name);
            ("profile", Vbase.Json.String Verus.Profiles.verus.Verus.Profiles.name);
            ("ok", Vbase.Json.Bool certified.Verus.Driver.pr_ok);
            ("plain_s", Vbase.Json.Float plain.Verus.Driver.pr_time_s);
            ("certified_s", Vbase.Json.Float certified.Verus.Driver.pr_time_s);
            ("overhead", Vbase.Json.Float overhead);
            ("checked", Vbase.Json.Int !checked);
            ("rejected", Vbase.Json.Int !rejected);
          ])
      cases
  in
  let doc =
    Vbase.Json.Obj
      [
        ("schema", Vbase.Json.String "verus-certify-bench/1");
        ("cert_schema", Vbase.Json.String Smt.Cert.schema_version);
        ("rows", Vbase.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_certify.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote %d row(s) to BENCH_certify.json\n%!" (List.length rows)

(* ------------------------------------------------------------------ *)
(* daemon: persistent verusd vs per-program jobs>1, burst latency       *)
(* ------------------------------------------------------------------ *)

(* Three measurements, written to BENCH_daemon.json (verus-daemon-bench/1,
   self-validated through Vservice.validate_daemon_bench):

   cold   — the whole suite verified through one persistent daemon (one
            client connection, requests served in order on a warm
            4-domain pool, cache off) vs the same suite as today's
            workflow: one [verus_cli verify <prog> --jobs 4] process
            per program, each paying process start-up, global table
            construction and its own domain spawn/join.  Best-of-3 on
            BOTH sides.  Each daemon digest must equal an in-process
            jobs=1 reference digest for the same program.
   warm   — a second client through the daemon's shared cache: a fill
            pass stores, the measured pass must hit (>= 90%).  Both
            passes submit sequentially: Vcache flushes whole-store
            atomically per run, so concurrent fills would clobber each
            other's stores (last-writer-wins) and understate the cache.
   burst  — scheduler-level queue latency: rounds of task bursts
            submitted to Sched pools of 1/4/8 domains, reporting
            p50/p90/p99 submit-to-execution-start latency. *)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let daemon_bench () =
  header "Verusd: persistent daemon vs per-program jobs>1 runs";
  let domains = 4 in
  let suite =
    [
      ("singly_linked", Verus.Bench_programs.singly_linked);
      ("doubly_linked", Verus.Bench_programs.doubly_linked);
      ("mem4", Verus.Bench_programs.memory_reasoning 4);
      ("dlock", Verus.Bench_programs.dlock_default);
    ]
  in
  let suite = if !quick then [ List.hd suite; List.nth suite 3 ] else suite in
  let reps = if !quick then 1 else 3 in
  Printf.printf
    "  Cold: the suite through one persistent %d-domain daemon (one connection,\n\
    \  requests in order, cache off) vs today's workflow: one verus_cli verify\n\
    \  --jobs %d process per program.  Best-of-%d on both sides; every daemon\n\
    \  digest must equal an in-process jobs=1 reference digest.\n\n"
    domains domains reps;
  (* ---- reference digests: in-process jobs=1, the canonical order ---- *)
  let reference =
    List.map
      (fun (name, prog) ->
        let r =
          Verus.Driver.verify_program ~config:Verus.Driver.Config.default
            Verus.Profiles.verus prog
        in
        if not r.Verus.Driver.pr_ok then
          failwith (Printf.sprintf "daemon bench: reference %s failed" name);
        (name, Verus.Driver.result_digest r))
      suite
  in
  (* ---- baseline: per-program verus_cli subprocesses, external wall ---- *)
  let cli_exe =
    let beside =
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/verus_cli.exe"
    in
    if Sys.file_exists beside then beside
    else if Sys.file_exists "_build/default/bin/verus_cli.exe" then
      "_build/default/bin/verus_cli.exe"
    else failwith "daemon bench: verus_cli.exe not built (dune build bin/verus_cli.exe)"
  in
  let baseline =
    List.map
      (fun (name, _) ->
        let cmd =
          Printf.sprintf "%s verify %s --jobs %d --no-cache >/dev/null 2>&1"
            (Filename.quote cli_exe) name domains
        in
        let best = ref infinity in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          let rc = Sys.command cmd in
          let wall = Unix.gettimeofday () -. t0 in
          if rc <> 0 then
            failwith (Printf.sprintf "daemon bench: baseline %s exited %d" name rc);
          if wall < !best then best := wall
        done;
        (name, !best, List.assoc name reference))
      suite
  in
  let baseline_total = List.fold_left (fun a (_, t, _) -> a +. t) 0.0 baseline in
  (* ---- daemon: one server, concurrent clients ---- *)
  let tmp tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verus-bench-daemon-%s-%d" tag (Unix.getpid ()))
  in
  let socket_path = tmp "sock" in
  let cache_dir = tmp "cache" in
  (match Verus.Vcache.clear ~dir:cache_dir with Ok () -> () | Error _ -> ());
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let served = ref (Ok ()) in
  let server_thread =
    Thread.create
      (fun () -> served := Verus.Vservice.serve ~socket_path ~domains ~cache_dir ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then failwith "daemon bench: daemon did not come up"
    else
      match Verusd.Client.connect ~socket_path with
      | Ok c -> Verusd.Client.close c
      | Error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  wait_up 100;
  let request c ~id ~cache name =
    let req =
      Verusd.Rpc.request ~id
        (Verusd.Rpc.M_job (Verusd.Rpc.query ~cache ~stream:false Verusd.Rpc.Verify name))
    in
    let t0 = Unix.gettimeofday () in
    let r = Verusd.Client.call c req in
    let wall = Unix.gettimeofday () -. t0 in
    match r with
    | Ok (Verusd.Rpc.E_done j) -> (wall, j)
    | Ok (Verusd.Rpc.E_error e) ->
      failwith ("daemon bench: " ^ e.Verusd.Rpc.code ^ ": " ^ e.Verusd.Rpc.message)
    | Ok _ -> failwith "daemon bench: unexpected terminal event"
    | Error e -> failwith ("daemon bench: " ^ e)
  in
  let jstr j k =
    match Vbase.Json.member k j with
    | Some (Vbase.Json.String s) -> s
    | _ -> failwith ("daemon bench: done payload missing " ^ k)
  in
  let jint j k =
    match Vbase.Json.member k j with
    | Some (Vbase.Json.Int n) -> n
    | _ -> failwith ("daemon bench: payload missing " ^ k)
  in
  (* One suite pass: one client connection, one request per program, in
     order.  Sequential submission keeps runs' whole-store cache flushes
     from overwriting each other, and on this box concurrent requests
     would only time-share the same cores anyway. *)
  let suite_pass ~cache =
    match Verusd.Client.connect ~socket_path with
    | Error e -> failwith ("daemon bench: connect: " ^ e)
    | Ok c ->
      let t0 = Unix.gettimeofday () in
      let rows =
        List.mapi (fun i (name, _) -> (name, request c ~id:(i + 1) ~cache name)) suite
      in
      let total = Unix.gettimeofday () -. t0 in
      Verusd.Client.close c;
      (total, rows)
  in
  let best_daemon = ref infinity in
  let best_rows = ref [] in
  for _ = 1 to reps do
    let total, rows = suite_pass ~cache:false in
    if total < !best_daemon then begin
      best_daemon := total;
      best_rows := rows
    end
  done;
  let daemon_total = !best_daemon in
  Printf.printf "  %-16s %12s %12s %8s %7s\n" "program" "jobs=4" "daemon" "ratio" "digest";
  let rows_json =
    List.map
      (fun (name, base_t, base_digest) ->
        let wall, j = List.assoc name !best_rows in
        let d_digest = jstr j "digest" in
        let equal = String.equal base_digest d_digest in
        Printf.printf "  %-16s %11.3fs %11.3fs %7.2fx %7s\n" name base_t wall
          (base_t /. wall)
          (if equal then "equal" else "DIFFERS");
        Vbase.Json.Obj
          [
            ("program", Vbase.Json.String name);
            ("baseline_s", Vbase.Json.Float base_t);
            ("daemon_s", Vbase.Json.Float wall);
            ("digest_equal", Vbase.Json.Bool equal);
          ])
      baseline
  in
  Printf.printf "  %-16s %11.3fs %11.3fs %7.2fx   (suite wall-clock)\n" "TOTAL"
    baseline_total daemon_total
    (baseline_total /. daemon_total);
  (* ---- warm shared cache: fill pass, then the measured pass ---- *)
  let _ = suite_pass ~cache:true in
  let warm_total, warm_rows = suite_pass ~cache:true in
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (_, j)) ->
        match Vbase.Json.member "cache" j with
        | Some c -> (h + jint c "hits", m + jint c "misses")
        | None -> (h, m))
      (0, 0) warm_rows
  in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "\n  warm second pass through the shared cache: %.3fs, %d/%d hits (%.0f%%)\n"
    warm_total hits (hits + misses) (100.0 *. hit_rate);
  (* shut the daemon down *)
  (match Verusd.Client.connect ~socket_path with
  | Ok c ->
    ignore (Verusd.Client.call c (Verusd.Rpc.request Verusd.Rpc.M_shutdown));
    Verusd.Client.close c
  | Error _ -> ());
  Thread.join server_thread;
  (match !served with Ok () -> () | Error e -> failwith ("daemon bench: serve: " ^ e));
  (* ---- burst queue latency at 1/4/8 domains ---- *)
  Printf.printf
    "\n  Burst queue latency (scheduler level): rounds of %d-task bursts, ~1ms tasks;\n\
    \  submit-to-execution-start percentiles.\n\n" 16;
  Printf.printf "  %-8s %6s %10s %10s %10s\n" "domains" "tasks" "p50" "p90" "p99";
  let burst_json =
    List.map
      (fun d ->
        let pool = Verusd.Sched.create ~domains:d in
        let rounds = if !quick then 10 else 40 in
        let burst = 16 in
        let n = rounds * burst in
        let lat = Array.make n 0.0 in
        (* warm-up round so domain start-up is not in the numbers *)
        let w = Verusd.Sched.batch () in
        for _ = 1 to burst do
          Verusd.Sched.submit pool w (fun () -> ())
        done;
        Verusd.Sched.await w;
        for round = 0 to rounds - 1 do
          let b = Verusd.Sched.batch () in
          for k = 0 to burst - 1 do
            let i = (round * burst) + k in
            let submitted = Unix.gettimeofday () in
            Verusd.Sched.submit pool b (fun () ->
                lat.(i) <- Unix.gettimeofday () -. submitted;
                let t = Unix.gettimeofday () in
                while Unix.gettimeofday () -. t < 0.001 do
                  ()
                done)
          done;
          Verusd.Sched.await b
        done;
        Verusd.Sched.shutdown pool;
        Array.sort compare lat;
        let us p = 1e6 *. percentile lat p in
        Printf.printf "  %-8d %6d %8.0fus %8.0fus %8.0fus\n" d n (us 0.50) (us 0.90)
          (us 0.99);
        Vbase.Json.Obj
          [
            ("domains", Vbase.Json.Int d);
            ("tasks", Vbase.Json.Int n);
            ("p50_us", Vbase.Json.Float (us 0.50));
            ("p90_us", Vbase.Json.Float (us 0.90));
            ("p99_us", Vbase.Json.Float (us 0.99));
          ])
      [ 1; 4; 8 ]
  in
  (* ---- emit + self-validate ---- *)
  let doc =
    Vbase.Json.Obj
      [
        ("schema", Vbase.Json.String "verus-daemon-bench/1");
        ("rpc_schema", Vbase.Json.String Verusd.Rpc.schema_version);
        ("domains", Vbase.Json.Int domains);
        ( "cold",
          Vbase.Json.Obj
            [
              ("baseline_jobs", Vbase.Json.Int domains);
              ("baseline_total_s", Vbase.Json.Float baseline_total);
              ("daemon_total_s", Vbase.Json.Float daemon_total);
              ("speedup", Vbase.Json.Float (baseline_total /. daemon_total));
              ("rows", Vbase.Json.List rows_json);
            ] );
        ( "warm",
          Vbase.Json.Obj
            [
              ("total_s", Vbase.Json.Float warm_total);
              ("hits", Vbase.Json.Int hits);
              ("misses", Vbase.Json.Int misses);
              ("hit_rate", Vbase.Json.Float hit_rate);
            ] );
        ("burst", Vbase.Json.List burst_json);
      ]
  in
  (match Verus.Vservice.validate_daemon_bench doc with
  | Ok () -> ()
  | Error e -> Printf.printf "  !! BENCH_daemon.json failed self-validation: %s\n%!" e);
  let oc = open_out "BENCH_daemon.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote BENCH_daemon.json (%s)\n%!" "verus-daemon-bench/1"

(* ------------------------------------------------------------------ *)
(* micro: bechamel microbenchmarks of the hot runtime paths             *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Microbenchmarks (bechamel): hot runtime operations";
  let open Bechamel in
  let open Toolkit in
  let os = Valloc.Os_mem.create () in
  let alloc = Valloc.Alloc.create ~checked:true ~heaps:1 os in
  let alloc_un = Valloc.Alloc.create ~checked:false ~heaps:1 os in
  let nr = Nr_lib.Nr.create ~replicas:1 () in
  let h = Nr_lib.Nr.register nr in
  let mem = Plog.Pmem.create ~size:(1 lsl 20) () in
  Plog.Log.format mem ~base:0 ~len:(1 lsl 20);
  let log = Result.get_ok (Plog.Log.attach mem ~base:0 ~len:(1 lsl 20)) in
  let payload = String.make 256 'x' in
  let dm = Ironkv.Delegation_map.create ~default_host:0 in
  Ironkv.Delegation_map.set_range dm ~lo:1000 ~hi:2000 ~host:1;
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"alloc/free (checked)" (Staged.stage (fun () ->
          let b = Valloc.Alloc.malloc alloc ~heap:0 64 in
          Valloc.Alloc.free alloc ~heap:0 b));
      Test.make ~name:"alloc/free (unchecked)" (Staged.stage (fun () ->
          let b = Valloc.Alloc.malloc alloc_un ~heap:0 64 in
          Valloc.Alloc.free alloc_un ~heap:0 b));
      Test.make ~name:"nr put" (Staged.stage (fun () ->
          incr counter;
          Nr_lib.Nr.execute_mut nr h (Nr_lib.Nr.Put (!counter land 1023, !counter))));
      Test.make ~name:"nr read" (Staged.stage (fun () -> ignore (Nr_lib.Nr.read nr h 7)));
      Test.make ~name:"log append 256B" (Staged.stage (fun () ->
          match Plog.Log.append log payload with
          | Ok () -> ()
          | Error _ ->
            ignore (Plog.Log.advance_head log (Plog.Log.tail log - 1024));
            ignore (Plog.Log.append log payload)));
      Test.make ~name:"delegation get" (Staged.stage (fun () ->
          ignore (Ironkv.Delegation_map.get dm 1500)));
      Test.make ~name:"crc32 256B" (Staged.stage (fun () ->
          ignore (Vbase.Crc32.digest_string payload)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  List.iter
    (fun t ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ t ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name r ->
          match Bechamel.Analyze.OLS.estimates r with
          | Some (est :: _) -> Printf.printf "  %-28s %12.0f ns/op\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* analyze: Vflow prescreen ablation (with vs without rung 0)           *)
(* ------------------------------------------------------------------ *)

let analyze_bench () =
  header "Vflow prescreen ablation: verification with vs without rung 0";
  Printf.printf
    "  Each row verifies a program twice, cold and cacheless: once plain, once with the\n\
    \  abstract-interpretation prescreen (--prescreen).  Discharged obligations skip the\n\
    \  solver and ship zero query bytes; everything else falls through to SMT carrying\n\
    \  the derived interval/congruence facts.  'verified' asserts the two runs reach the\n\
    \  same verdict on the same functions (the prescreen must change cost, never truth).\n\n";
  let cases =
    [
      (Verus.Profiles.verus, "const_cond", Verus.Bench_programs.const_cond);
      (Verus.Profiles.verus, "singly_linked", Verus.Bench_programs.singly_linked);
      (Verus.Profiles.verus, "mem8", Verus.Bench_programs.memory_reasoning 8);
      (Verus.Profiles.dafny, "singly_linked", Verus.Bench_programs.singly_linked);
      (Verus.Profiles.dafny, "const_cond", Verus.Bench_programs.const_cond);
    ]
  in
  let cases = if !quick then [ List.hd cases ] else cases in
  Printf.printf "  %-10s %-16s %5s %6s %10s %10s %9s %9s %9s\n" "profile" "program" "vcs"
    "disch" "base" "analyze" "speedup" "bytes-" "verified";
  let total_vcs = ref 0 and total_disch = ref 0 in
  let rows =
    List.map
      (fun ((p : Verus.Profiles.t), name, prog) ->
        let run analyze =
          Verus.Driver.verify_program
            ~config:Verus.Driver.Config.(with_analyze analyze default)
            p prog
        in
        let base = run false in
        let pre = run true in
        let vcs =
          List.fold_left
            (fun acc (f : Verus.Driver.fn_result) -> acc + List.length f.Verus.Driver.fnr_vcs)
            0 base.Verus.Driver.pr_fns
        in
        let disch = Verus.Driver.prescreen_discharged pre in
        total_vcs := !total_vcs + vcs;
        total_disch := !total_disch + disch;
        let verified_equal =
          base.Verus.Driver.pr_ok = pre.Verus.Driver.pr_ok
          && List.length base.Verus.Driver.pr_fns = List.length pre.Verus.Driver.pr_fns
        in
        let speedup =
          if pre.Verus.Driver.pr_time_s > 0.0 then
            base.Verus.Driver.pr_time_s /. pre.Verus.Driver.pr_time_s
          else infinity
        in
        Printf.printf "  %-10s %-16s %5d %6d %9.3fs %9.3fs %8.2fx %9d %9s\n%!"
          p.Verus.Profiles.name name vcs disch base.Verus.Driver.pr_time_s
          pre.Verus.Driver.pr_time_s speedup
          (base.Verus.Driver.pr_bytes - pre.Verus.Driver.pr_bytes)
          (if verified_equal then "equal" else "DIFFERS");
        Vbase.Json.Obj
          [
            ("profile", Vbase.Json.String p.Verus.Profiles.name);
            ("program", Vbase.Json.String name);
            ("vcs", Vbase.Json.Int vcs);
            ("discharged", Vbase.Json.Int disch);
            ("base_s", Vbase.Json.Float base.Verus.Driver.pr_time_s);
            ("analyze_s", Vbase.Json.Float pre.Verus.Driver.pr_time_s);
            ("base_bytes", Vbase.Json.Int base.Verus.Driver.pr_bytes);
            ("analyze_bytes", Vbase.Json.Int pre.Verus.Driver.pr_bytes);
            ("verified_equal", Vbase.Json.Bool verified_equal);
          ])
      cases
  in
  let doc =
    Vbase.Json.Obj
      [
        ("schema", Vbase.Json.String Vflow.bench_schema);
        ("analysis", Vbase.Json.String Vflow.version);
        ("rows", Vbase.Json.List rows);
        ( "totals",
          Vbase.Json.Obj
            [
              ("total_vcs", Vbase.Json.Int !total_vcs);
              ("total_discharged", Vbase.Json.Int !total_disch);
              ( "discharge_rate",
                Vbase.Json.Float
                  (if !total_vcs = 0 then 0.0
                   else float_of_int !total_disch /. float_of_int !total_vcs) );
            ] );
      ]
  in
  (match Vflow.validate_analyze_bench doc with
  | Ok () -> ()
  | Error e -> Printf.printf "  !! BENCH_analyze.json failed self-validation: %s\n%!" e);
  let oc = open_out "BENCH_analyze.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote %d row(s) to BENCH_analyze.json (%s)\n%!" (List.length rows)
    Vflow.bench_schema

(* ------------------------------------------------------------------ *)
(* ladder: per-VC escalation ladder vs the monolithic configuration     *)
(* ------------------------------------------------------------------ *)

(* Written to BENCH_ladder.json (verus-ladder-bench/1, self-validated
   through Vladder.validate_ladder_bench):

   rows — each program x profile verified three ways, per-VC:
          * monolithic: the profile configuration as-is, no ladder;
          * cold ladder: the escalate ladder, climbing from the quick
            rung, filling a fresh cache as it goes.  The top rung is
            the untouched profile, so this arm's result digest must be
            identical to the monolithic one — the ladder may only
            change cost, never truth.  wins_per_rung says where the
            obligations settled; escalations counts climbs.
          * warm: a profiled re-run against that cache.  The cold
            entries carry no profile data so every lookup is gated out
            of serving, but each entry's recorded winning rung starts
            the climb there directly (hint_starts) — easy obligations
            re-prove at their cheap rung, stubborn ones go straight to
            the top with zero attempts wasted below it.  The warm arm
            is the improvement claim: cheap-rung savings without the
            cold climb tax.

   The profile families split three ways.  liberal(Verus) at its
   native budget is where the cold quick rung genuinely wins (the
   scaled per-round caps stop the instance flood on easy obligations);
   Dafny's native budget floods so hard the mem programs are
   intractable here, so the mem4 row runs under a documented
   rounds/instances cap — deterministic, digest-exact, and honest
   about the result: cold climbing *loses* on stubborn obligations and
   only the warm jump recovers parity-or-better.  (mem8/Dafny has no
   seat at this table: at its native budget it is intractable, and at
   every tractable cap the ladder's half-budget steady rung *proves*
   obligations the flooded full configuration cannot — a verdict
   strengthening, sound but digest-divergent, so it cannot serve in a
   digest-equality row.)  Verus rows pin the no-regression side: a
   tight profile has nothing for the ladder to trim, and totals must
   stay within noise. *)

let ladder_bench () =
  header "Vladder: per-VC escalation ladder vs monolithic profile configuration";
  Printf.printf
    "  Three arms per row: monolithic, cold 'escalate' climb (fills a cache),\n\
    \  and a warm profile-guided re-run that jumps every obligation straight\n\
    \  to its recorded winning rung.  All three must agree on the result\n\
    \  digest; the warm arm must waste zero lower-rung attempts.\n\n";
  (* Dafny's mem rows are bounded by instantiation rounds/instances,
     not wall clock: a round-limit failure is deterministic, so the
     three-way digest comparison is exact (a deadline cap makes
     verdicts timing-dependent near the boundary and the arms can
     legitimately DIFFER).  The cap applies identically to all arms. *)
  let cap (p : Verus.Profiles.t) =
    Verus.Profiles.with_budget
      {
        (Verus.Profiles.budget p) with
        Smt.Solver.max_rounds = 6;
        max_instances_per_round = 150;
        max_instances_per_quant = 40;
      }
      p
  in
  let liberal = Verus.Profiles.liberal Verus.Profiles.verus in
  let ladder = Verus.Driver.Ladder.escalate in
  let cases =
    [
      ("mem4", Verus.Bench_programs.memory_reasoning 4, liberal);
      ("mem8", Verus.Bench_programs.memory_reasoning 8, liberal);
      ("mem4", Verus.Bench_programs.memory_reasoning 4, cap Verus.Profiles.dafny);
      ("mem4", Verus.Bench_programs.memory_reasoning 4, Verus.Profiles.verus);
      ("mem8", Verus.Bench_programs.memory_reasoning 8, Verus.Profiles.verus);
      ("singly_linked", Verus.Bench_programs.singly_linked, Verus.Profiles.verus);
      ("singly_linked", Verus.Bench_programs.singly_linked, Verus.Profiles.dafny);
    ]
  in
  let cases = if !quick then [ List.hd cases; List.nth cases 3 ] else cases in
  let wins_of (r : Verus.Driver.program_result) =
    match r.Verus.Driver.pr_ladder with
    | Some ls -> Array.to_list ls.Verus.Driver.ls_wins
    | None -> []
  in
  let escalations_of (r : Verus.Driver.program_result) =
    match r.Verus.Driver.pr_ladder with
    | Some ls -> ls.Verus.Driver.ls_escalations
    | None -> 0
  in
  (* Attempts spent at rungs strictly below the rung that finally
     answered — the cost the winning-rung jump exists to erase. *)
  let wasted_of (r : Verus.Driver.program_result) =
    List.fold_left
      (fun acc (fnr : Verus.Driver.fn_result) ->
        List.fold_left
          (fun acc (v : Verus.Driver.vc_result) ->
            match v.Verus.Driver.vcr_rung with
            | Some w ->
              acc
              + List.length (List.filter (fun t -> t < w) v.Verus.Driver.vcr_rungs_tried)
            | None -> acc)
          acc fnr.Verus.Driver.fnr_vcs)
      0 r.Verus.Driver.pr_fns
  in
  let hint_starts_of (r : Verus.Driver.program_result) =
    match r.Verus.Driver.pr_ladder with
    | Some ls -> ls.Verus.Driver.ls_hint_starts
    | None -> 0
  in
  let cache_hits_of (r : Verus.Driver.program_result) =
    match r.Verus.Driver.pr_ladder with
    | Some ls -> ls.Verus.Driver.ls_cache_hits
    | None -> 0
  in
  let base_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verus-bench-ladder-%d" (Unix.getpid ()))
  in
  Printf.printf "  %-16s %-14s %9s %9s %9s %8s %6s %6s %-8s %8s\n" "program" "profile"
    "mono" "ladder" "warm" "speedup" "escal" "hints" "wins" "verdicts";
  let rows =
    List.mapi
      (fun i (name, prog, (p : Verus.Profiles.t)) ->
        let dir = Printf.sprintf "%s-%d" base_dir i in
        (match Verus.Vcache.clear ~dir with Ok () -> () | Error _ -> ());
        let mono = Verus.Driver.verify_program ~config:Verus.Driver.Config.default p prog in
        let cold =
          Verus.Driver.verify_program
            ~config:Verus.Driver.Config.(default |> with_ladder ladder |> with_cache dir)
            p prog
        in
        let warm =
          Verus.Driver.verify_program
            ~config:
              Verus.Driver.Config.(
                default |> with_ladder ladder |> with_cache dir |> with_profile true)
            p prog
        in
        let dg = Verus.Driver.result_digest in
        let verdicts_equal =
          String.equal (dg mono) (dg cold) && String.equal (dg mono) (dg warm)
        in
        let wins = wins_of cold in
        let speedup =
          if warm.Verus.Driver.pr_time_s > 0.0 then
            mono.Verus.Driver.pr_time_s /. warm.Verus.Driver.pr_time_s
          else infinity
        in
        Printf.printf "  %-16s %-14s %8.3fs %8.3fs %8.3fs %7.2fx %6d %6d %-8s %8s\n%!"
          name p.Verus.Profiles.name mono.Verus.Driver.pr_time_s
          cold.Verus.Driver.pr_time_s warm.Verus.Driver.pr_time_s speedup
          (escalations_of cold) (hint_starts_of warm)
          (String.concat "/" (List.map string_of_int wins))
          (if verdicts_equal then "equal" else "DIFFER");
        ( Vbase.Json.Obj
            [
              ("program", Vbase.Json.String name);
              ("profile", Vbase.Json.String p.Verus.Profiles.name);
              ("monolithic_s", Vbase.Json.Float mono.Verus.Driver.pr_time_s);
              ("ladder_s", Vbase.Json.Float cold.Verus.Driver.pr_time_s);
              ("warm_s", Vbase.Json.Float warm.Verus.Driver.pr_time_s);
              ("escalations", Vbase.Json.Int (escalations_of cold));
              ("hint_starts", Vbase.Json.Int (hint_starts_of warm));
              ("warm_wasted_attempts", Vbase.Json.Int (wasted_of warm));
              ("verdicts_equal", Vbase.Json.Bool verdicts_equal);
              ("wins_per_rung", Vbase.Json.List (List.map (fun n -> Vbase.Json.Int n) wins));
            ],
          (cache_hits_of warm, hint_starts_of warm, wasted_of warm, verdicts_equal) ))
      cases
  in
  let rows, warm_stats = List.split rows in
  let total f = List.fold_left (fun acc s -> acc + f s) 0 warm_stats in
  let hits = total (fun (h, _, _, _) -> h) in
  let jump_starts = total (fun (_, j, _, _) -> j) in
  let warm_wasted = total (fun (_, _, w, _) -> w) in
  let digest_equal_cold = List.for_all (fun (_, _, _, eq) -> eq) warm_stats in
  Printf.printf
    "\n\
    \  warm arms, all rows: %d obligation(s) jumped straight to their recorded\n\
    \  winning rung (%d served as plain cache hits), wasting %d lower-rung\n\
    \  attempt(s); all digests %s\n"
    jump_starts hits warm_wasted
    (if digest_equal_cold then "equal" else "DIFFER");
  let doc =
    Vbase.Json.Obj
      [
        ("schema", Vbase.Json.String Vladder.bench_schema);
        ("ladder", Vbase.Json.String (Verus.Driver.Ladder.name ladder));
        ("rows", Vbase.Json.List rows);
        ( "warm",
          Vbase.Json.Obj
            [
              ("cache_hits", Vbase.Json.Int hits);
              ("hint_starts", Vbase.Json.Int jump_starts);
              ("wasted_lower_rung_attempts", Vbase.Json.Int warm_wasted);
              ("digest_equal_cold", Vbase.Json.Bool digest_equal_cold);
            ] );
      ]
  in
  (match Vladder.validate_ladder_bench doc with
  | Ok () -> ()
  | Error e -> Printf.printf "  !! BENCH_ladder.json failed self-validation: %s\n%!" e);
  let oc = open_out "BENCH_ladder.json" in
  output_string oc (Vbase.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wrote %d row(s) to BENCH_ladder.json (%s)\n%!" (List.length rows)
    Vladder.bench_schema

(* ------------------------------------------------------------------ *)
(* main                                                                 *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig10-faults", fig10_faults);
    ("kv", kv_bench);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("tab-epr", tab_epr);
    ("ablation", ablation);
    ("lint", lint_bench);
    ("cache", cache_bench);
    ("certify", certify_bench);
    ("daemon", daemon_bench);
    ("analyze", analyze_bench);
    ("ladder", ladder_bench);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  quick := List.mem "--quick" args;
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let to_run =
    if wanted = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown section %s (have: %s)\n" name
              (String.concat " " (List.map fst sections));
            exit 2)
        wanted
  in
  Printf.printf "Verus-OCaml paper-reproduction bench harness%s\n"
    (if !quick then " (--quick)" else "");
  List.iter
    (fun (name, f) ->
      try f ()
      with e ->
        Printf.printf "\n  !! section %s aborted: %s\n%!" name (Printexc.to_string e))
    to_run;
  write_profile_json ();
  print_endline "\nAll requested sections complete."
